"""Compact bit-sets over non-negative integer ids.

The Taxogram occurrence indices (paper §3, Step 2) store occurrence-id
sets as bit vectors so that computing the occurrence set of a specialized
pattern is a single bitwise AND (Lemma 7).  Python's arbitrary-precision
integers make an excellent backing store: AND/OR are C-speed, and
``int.bit_count`` gives popcount.

:class:`BitSet` is a thin immutable-style wrapper.  All binary operations
return new instances; in-place mutation is limited to :meth:`add` and
:meth:`discard` which update the wrapper in place (the underlying int is
still replaced, as ints are immutable).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

__all__ = ["BitSet"]


class BitSet:
    """A set of non-negative integers backed by a single Python int."""

    __slots__ = ("_bits",)

    def __init__(self, ids: Iterable[int] = (), _bits: int = 0) -> None:
        bits = _bits
        for i in ids:
            if i < 0:
                raise ValueError(f"BitSet ids must be non-negative, got {i}")
            bits |= 1 << i
        self._bits = bits

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_bits(cls, bits: int) -> "BitSet":
        """Wrap a raw integer bit mask (no copying)."""
        if bits < 0:
            raise ValueError("bit mask must be non-negative")
        out = cls.__new__(cls)
        out._bits = bits
        return out

    @classmethod
    def full(cls, n: int) -> "BitSet":
        """The set {0, 1, ..., n-1}."""
        if n < 0:
            raise ValueError("size must be non-negative")
        return cls.from_bits((1 << n) - 1)

    # -- basic protocol --------------------------------------------------------

    @property
    def bits(self) -> int:
        """The raw integer mask (read-only view)."""
        return self._bits

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __contains__(self, i: int) -> bool:
        return i >= 0 and (self._bits >> i) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitSet):
            return self._bits == other._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return f"BitSet({{{', '.join(map(str, self))}}})"

    # -- mutation --------------------------------------------------------------

    def add(self, i: int) -> None:
        if i < 0:
            raise ValueError(f"BitSet ids must be non-negative, got {i}")
        self._bits |= 1 << i

    def discard(self, i: int) -> None:
        if i >= 0:
            self._bits &= ~(1 << i)

    def union_update(self, other: "BitSet") -> None:
        """In-place union: add every member of ``other`` to this set."""
        self._bits |= other._bits

    def clear_bit(self, i: int) -> bool:
        """Remove ``i`` from the set; return whether it was present.

        The incremental updater uses the return value to count how many
        occurrence columns a removal actually cleared.
        """
        if i < 0 or (self._bits >> i) & 1 == 0:
            return False
        self._bits &= ~(1 << i)
        return True

    def difference_update(self, other: "BitSet") -> None:
        """In-place difference: remove every member of ``other``."""
        self._bits &= ~other._bits

    # -- set algebra -----------------------------------------------------------

    def __and__(self, other: "BitSet") -> "BitSet":
        return BitSet.from_bits(self._bits & other._bits)

    def __or__(self, other: "BitSet") -> "BitSet":
        return BitSet.from_bits(self._bits | other._bits)

    def __xor__(self, other: "BitSet") -> "BitSet":
        return BitSet.from_bits(self._bits ^ other._bits)

    def __sub__(self, other: "BitSet") -> "BitSet":
        return BitSet.from_bits(self._bits & ~other._bits)

    def intersection(self, other: "BitSet") -> "BitSet":
        return self & other

    def union(self, other: "BitSet") -> "BitSet":
        return self | other

    def difference(self, other: "BitSet") -> "BitSet":
        return self - other

    def isdisjoint(self, other: "BitSet") -> bool:
        return self._bits & other._bits == 0

    def overlap(self, other: "BitSet") -> int:
        """``|self & other|`` via one AND + popcount, no wrapper alloc.

        The hot building block for similarity scoring: overlap /
        jaccard over fragment fingerprints run thousands of times per
        treelet-prefiltered query.
        """
        return (self._bits & other._bits).bit_count()

    def jaccard(self, other: "BitSet") -> float:
        """Jaccard similarity ``|A & B| / |A | B|``; two empty sets are
        identical, so the empty/empty case is defined as ``1.0``."""
        union = (self._bits | other._bits).bit_count()
        if union == 0:
            return 1.0
        return (self._bits & other._bits).bit_count() / union

    def issubset(self, other: "BitSet") -> bool:
        return self._bits & ~other._bits == 0

    def issuperset(self, other: "BitSet") -> bool:
        return other.issubset(self)

    def offset(self, k: int) -> "BitSet":
        """A new set with every member shifted up by ``k``.

        Re-bases a shard-local occurrence-id set onto a global id space
        (the parallel merge layer ORs offset shard sets together).
        """
        if k < 0:
            raise ValueError(f"offset must be non-negative, got {k}")
        return BitSet.from_bits(self._bits << k)

    def compact(self, id_map: Mapping[int, int]) -> "BitSet":
        """A new set with every member renumbered through ``id_map``.

        Members absent from ``id_map`` are dropped — this is how
        compaction discards dead occurrence/graph ids while densifying
        the survivors.
        """
        bits = 0
        for i in self:
            j = id_map.get(i)
            if j is None:
                continue
            if j < 0:
                raise ValueError(f"compact ids must be non-negative, got {j}")
            bits |= 1 << j
        return BitSet.from_bits(bits)

    def copy(self) -> "BitSet":
        return BitSet.from_bits(self._bits)

    def to_set(self) -> set[int]:
        """Materialize as a plain Python set (mostly for tests/debugging)."""
        return set(self)
