"""Compact bit-sets over non-negative integer ids.

The Taxogram occurrence indices (paper §3, Step 2) store occurrence-id
sets as bit vectors so that computing the occurrence set of a specialized
pattern is a single bitwise AND (Lemma 7).

Two implementations live here:

* :class:`BitSet` — the production class: a roaring-style *blocked*
  bit-set.  The id space is split into blocks of :data:`BLOCK_BITS`
  (65536) ids; only non-empty blocks are materialized, keyed by block
  index.  In memory every resident block is a Python int, so block-local
  AND/OR/popcount run at C speed exactly like the historical single-int
  backing, while sparse sets over a large id universe skip absent blocks
  entirely (the kernel counters below make the skipping observable).
  The *serialized* form (:meth:`BitSet.to_bytes`) picks the smallest of
  three container encodings per block — sorted-array for sparse blocks,
  run-length for contiguous ranges, raw bitmap for dense blocks — which
  is where the on-disk compression comes from.
* :class:`IntBitSet` — the previous implementation (one arbitrary-
  precision int), kept verbatim as the differential *reference oracle*
  for the property test suite (``tests/test_bitset_compressed.py``).
  Every ``BitSet`` operation is checked bit-for-bit against it.

All binary operations return new instances; in-place mutation is limited
to the ``*_update`` / ``add`` / ``discard`` / ``clear_bit`` family.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, Mapping

__all__ = [
    "BLOCK_BITS",
    "BitSet",
    "IntBitSet",
    "kernel_counters",
    "kernel_delta",
    "reset_kernel_counters",
]

BLOCK_BITS = 1 << 16  # ids per block
_BLOCK_MASK = BLOCK_BITS - 1
_BLOCK_SHIFT = 16
_BLOCK_BYTES = BLOCK_BITS // 8

# Serialized container kinds (see BitSet.to_bytes).
_KIND_ARRAY = 0  # sorted uint16 members
_KIND_RUNS = 1  # (start, length-1) uint16 pairs
_KIND_BITMAP = 2  # raw 8 KiB little-endian bitmap

_SERIAL_VERSION = 1
_SERIAL_HEADER = struct.Struct(">BI")  # version, block count
_SERIAL_BLOCK = struct.Struct(">IBH")  # block key, kind, item count


# ---------------------------------------------------------------------------
# Kernel counters
# ---------------------------------------------------------------------------
#
# Module-level work counters for the bit-set kernels, mirroring the
# MiningCounters discipline: cheap unconditional increments, read out as
# a namespaced ``bitset.*`` dict.  They are cumulative per process; use
# ``kernel_counters()`` to snapshot and ``kernel_delta(snapshot)`` to
# attribute work to one run (the store pipeline and the serving metrics
# endpoint both do).


class _KernelCounters:
    __slots__ = (
        "intersections",
        "unions",
        "differences",
        "popcounts",
        "jaccards",
        "offsets",
        "blocks_visited",
        "blocks_skipped",
        "containers_encoded",
        "containers_decoded",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)


_KERNEL = _KernelCounters()


def kernel_counters() -> dict[str, int]:
    """Cumulative ``bitset.*`` kernel counters for this process."""
    return {
        f"bitset.{name}": getattr(_KERNEL, name)
        for name in _KernelCounters.__slots__
    }


def kernel_delta(snapshot: Mapping[str, int]) -> dict[str, int]:
    """Counters accumulated since ``snapshot`` (zero entries dropped)."""
    out: dict[str, int] = {}
    for name, value in kernel_counters().items():
        delta = value - snapshot.get(name, 0)
        if delta:
            out[name] = delta
    return out


def reset_kernel_counters() -> None:
    for name in _KernelCounters.__slots__:
        setattr(_KERNEL, name, 0)


# ---------------------------------------------------------------------------
# The blocked bit-set
# ---------------------------------------------------------------------------


class BitSet:
    """A set of non-negative integers in block-compressed form.

    ``_blocks`` maps block index -> non-zero block int; empty blocks are
    never stored, which keeps the representation canonical (equality and
    hashing are plain dict comparisons).
    """

    __slots__ = ("_blocks",)

    def __init__(self, ids: Iterable[int] = ()) -> None:
        blocks: dict[int, int] = {}
        for i in ids:
            if i < 0:
                raise ValueError(f"BitSet ids must be non-negative, got {i}")
            key = i >> _BLOCK_SHIFT
            blocks[key] = blocks.get(key, 0) | (1 << (i & _BLOCK_MASK))
        self._blocks = blocks

    # -- construction helpers -------------------------------------------------

    @classmethod
    def _from_blocks(cls, blocks: dict[int, int]) -> "BitSet":
        out = cls.__new__(cls)
        out._blocks = blocks
        return out

    @classmethod
    def from_bits(cls, bits: int) -> "BitSet":
        """Build from a raw integer bit mask."""
        if bits < 0:
            raise ValueError("bit mask must be non-negative")
        blocks: dict[int, int] = {}
        key = 0
        while bits:
            block = bits & ((1 << BLOCK_BITS) - 1)
            if block:
                blocks[key] = block
            bits >>= BLOCK_BITS
            key += 1
        return cls._from_blocks(blocks)

    @classmethod
    def full(cls, n: int) -> "BitSet":
        """The set {0, 1, ..., n-1}."""
        if n < 0:
            raise ValueError("size must be non-negative")
        return cls.from_bits((1 << n) - 1)

    # -- basic protocol --------------------------------------------------------

    @property
    def bits(self) -> int:
        """The set materialized as one raw integer mask.

        Rebuilding the mask walks every resident block; callers on hot
        paths should prefer the block-aware kernels below.
        """
        out = 0
        for key, block in self._blocks.items():
            out |= block << (key * BLOCK_BITS)
        return out

    def __len__(self) -> int:
        return sum(block.bit_count() for block in self._blocks.values())

    def __bool__(self) -> bool:
        return bool(self._blocks)

    def __contains__(self, i: int) -> bool:
        if i < 0:
            return False
        block = self._blocks.get(i >> _BLOCK_SHIFT, 0)
        return (block >> (i & _BLOCK_MASK)) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        for key in sorted(self._blocks):
            base = key * BLOCK_BITS
            block = self._blocks[key]
            while block:
                low = block & -block
                yield base + low.bit_length() - 1
                block ^= low

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitSet):
            return self._blocks == other._blocks
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._blocks.items()))

    def __repr__(self) -> str:
        return f"BitSet({{{', '.join(map(str, self))}}})"

    # -- mutation --------------------------------------------------------------

    def add(self, i: int) -> None:
        if i < 0:
            raise ValueError(f"BitSet ids must be non-negative, got {i}")
        key = i >> _BLOCK_SHIFT
        self._blocks[key] = self._blocks.get(key, 0) | (
            1 << (i & _BLOCK_MASK)
        )

    def discard(self, i: int) -> None:
        if i < 0:
            return
        key = i >> _BLOCK_SHIFT
        block = self._blocks.get(key)
        if block is None:
            return
        cleared = block & ~(1 << (i & _BLOCK_MASK))
        if cleared:
            self._blocks[key] = cleared
        else:
            del self._blocks[key]

    def union_update(self, other: "BitSet") -> None:
        """In-place union: add every member of ``other`` to this set."""
        _KERNEL.unions += 1
        blocks = self._blocks
        for key, block in other._blocks.items():
            blocks[key] = blocks.get(key, 0) | block
            _KERNEL.blocks_visited += 1

    def clear_bit(self, i: int) -> bool:
        """Remove ``i`` from the set; return whether it was present.

        The incremental updater uses the return value to count how many
        occurrence columns a removal actually cleared.
        """
        if i < 0:
            return False
        key = i >> _BLOCK_SHIFT
        block = self._blocks.get(key)
        if block is None:
            return False
        bit = 1 << (i & _BLOCK_MASK)
        if block & bit == 0:
            return False
        cleared = block ^ bit
        if cleared:
            self._blocks[key] = cleared
        else:
            del self._blocks[key]
        return True

    def difference_update(self, other: "BitSet") -> None:
        """In-place difference: remove every member of ``other``."""
        _KERNEL.differences += 1
        blocks = self._blocks
        for key, block in other._blocks.items():
            mine = blocks.get(key)
            if mine is None:
                _KERNEL.blocks_skipped += 1
                continue
            _KERNEL.blocks_visited += 1
            cleared = mine & ~block
            if cleared:
                blocks[key] = cleared
            else:
                del blocks[key]

    # -- set algebra -----------------------------------------------------------

    def __and__(self, other: "BitSet") -> "BitSet":
        _KERNEL.intersections += 1
        small, big = self._blocks, other._blocks
        if len(big) < len(small):
            small, big = big, small
        out: dict[int, int] = {}
        for key, block in small.items():
            theirs = big.get(key)
            if theirs is None:
                _KERNEL.blocks_skipped += 1
                continue
            _KERNEL.blocks_visited += 1
            merged = block & theirs
            if merged:
                out[key] = merged
        return BitSet._from_blocks(out)

    def __or__(self, other: "BitSet") -> "BitSet":
        _KERNEL.unions += 1
        out = dict(self._blocks)
        for key, block in other._blocks.items():
            out[key] = out.get(key, 0) | block
            _KERNEL.blocks_visited += 1
        return BitSet._from_blocks(out)

    def __xor__(self, other: "BitSet") -> "BitSet":
        out = dict(self._blocks)
        for key, block in other._blocks.items():
            merged = out.get(key, 0) ^ block
            if merged:
                out[key] = merged
            else:
                out.pop(key, None)
        return BitSet._from_blocks(out)

    def __sub__(self, other: "BitSet") -> "BitSet":
        _KERNEL.differences += 1
        out: dict[int, int] = {}
        for key, block in self._blocks.items():
            theirs = other._blocks.get(key)
            if theirs is None:
                out[key] = block
                _KERNEL.blocks_skipped += 1
                continue
            _KERNEL.blocks_visited += 1
            merged = block & ~theirs
            if merged:
                out[key] = merged
        return BitSet._from_blocks(out)

    def intersection(self, other: "BitSet") -> "BitSet":
        return self & other

    def union(self, other: "BitSet") -> "BitSet":
        return self | other

    def difference(self, other: "BitSet") -> "BitSet":
        return self - other

    def isdisjoint(self, other: "BitSet") -> bool:
        small, big = self._blocks, other._blocks
        if len(big) < len(small):
            small, big = big, small
        for key, block in small.items():
            theirs = big.get(key)
            if theirs is not None and block & theirs:
                return False
        return True

    def intersection_count(self, other: "BitSet") -> int:
        """``|self & other|`` without materializing the intersection.

        The container-aware support kernel: AND + popcount per shared
        block, absent blocks skipped, no intermediate set allocated.
        """
        _KERNEL.intersections += 1
        _KERNEL.popcounts += 1
        small, big = self._blocks, other._blocks
        if len(big) < len(small):
            small, big = big, small
        total = 0
        for key, block in small.items():
            theirs = big.get(key)
            if theirs is None:
                _KERNEL.blocks_skipped += 1
                continue
            _KERNEL.blocks_visited += 1
            total += (block & theirs).bit_count()
        return total

    def overlap(self, other: "BitSet") -> int:
        """Alias of :meth:`intersection_count` (the historical name).

        The hot building block for similarity scoring: overlap /
        jaccard over fragment fingerprints run thousands of times per
        treelet-prefiltered query.
        """
        return self.intersection_count(other)

    def jaccard(self, other: "BitSet") -> float:
        """Jaccard similarity ``|A & B| / |A | B|``; two empty sets are
        identical, so the empty/empty case is defined as ``1.0``."""
        _KERNEL.jaccards += 1
        inter = 0
        union = 0
        mine, theirs = self._blocks, other._blocks
        for key, block in mine.items():
            other_block = theirs.get(key)
            if other_block is None:
                union += block.bit_count()
            else:
                inter += (block & other_block).bit_count()
                union += (block | other_block).bit_count()
            _KERNEL.blocks_visited += 1
        for key, block in theirs.items():
            if key not in mine:
                union += block.bit_count()
        if union == 0:
            return 1.0
        return inter / union

    def issubset(self, other: "BitSet") -> bool:
        for key, block in self._blocks.items():
            if block & ~other._blocks.get(key, 0):
                return False
        return True

    def issuperset(self, other: "BitSet") -> bool:
        return other.issubset(self)

    def offset(self, k: int) -> "BitSet":
        """A new set with every member shifted up by ``k``.

        Re-bases a shard-local occurrence-id set onto a global id space
        (the parallel merge layer ORs offset shard sets together).
        Whole-block hops are dict re-keying; only the sub-block
        remainder shifts bits (with carry into the next block).
        """
        if k < 0:
            raise ValueError(f"offset must be non-negative, got {k}")
        _KERNEL.offsets += 1
        hop, rem = divmod(k, BLOCK_BITS)
        out: dict[int, int] = {}
        for key, block in self._blocks.items():
            shifted = block << rem
            low = shifted & ((1 << BLOCK_BITS) - 1)
            high = shifted >> BLOCK_BITS
            if low:
                out[key + hop] = out.get(key + hop, 0) | low
            if high:
                out[key + hop + 1] = out.get(key + hop + 1, 0) | high
        return BitSet._from_blocks(out)

    def compact(self, id_map: Mapping[int, int]) -> "BitSet":
        """A new set with every member renumbered through ``id_map``.

        Members absent from ``id_map`` are dropped — this is how
        compaction discards dead occurrence/graph ids while densifying
        the survivors.
        """
        out = BitSet()
        for i in self:
            j = id_map.get(i)
            if j is None:
                continue
            if j < 0:
                raise ValueError(f"compact ids must be non-negative, got {j}")
            out.add(j)
        return out

    def copy(self) -> "BitSet":
        return BitSet._from_blocks(dict(self._blocks))

    def to_set(self) -> set[int]:
        """Materialize as a plain Python set (mostly for tests/debugging)."""
        return set(self)

    # -- serialization ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize; every block gets the smallest of three encodings.

        Per block the encoder compares sorted-array (2 bytes/member),
        run-length (4 bytes/run) and raw bitmap (8 KiB) sizes and keeps
        the winner, so sparse, contiguous and dense blocks each pay
        their natural cost.  :meth:`from_bytes` round-trips exactly.
        """
        parts = [_SERIAL_HEADER.pack(_SERIAL_VERSION, len(self._blocks))]
        for key in sorted(self._blocks):
            block = self._blocks[key]
            members = block.bit_count()
            runs = (block & ~(block >> 1)).bit_count()
            array_bytes = 2 * members
            run_bytes = 4 * runs
            _KERNEL.containers_encoded += 1
            if run_bytes <= array_bytes and run_bytes < _BLOCK_BYTES:
                encoded_runs = _block_runs(block)
                parts.append(
                    _SERIAL_BLOCK.pack(key, _KIND_RUNS, len(encoded_runs))
                )
                for start, length in encoded_runs:
                    parts.append(struct.pack(">HH", start, length - 1))
            elif array_bytes < _BLOCK_BYTES:
                values = _block_members(block)
                parts.append(
                    _SERIAL_BLOCK.pack(key, _KIND_ARRAY, len(values))
                )
                parts.append(struct.pack(f">{len(values)}H", *values))
            else:
                parts.append(_SERIAL_BLOCK.pack(key, _KIND_BITMAP, 0))
                parts.append(block.to_bytes(_BLOCK_BYTES, "little"))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BitSet":
        """Inverse of :meth:`to_bytes`; raises ValueError on bad input."""
        if len(data) < _SERIAL_HEADER.size:
            raise ValueError("truncated BitSet serialization")
        version, count = _SERIAL_HEADER.unpack_from(data, 0)
        if version != _SERIAL_VERSION:
            raise ValueError(f"unknown BitSet serialization version {version}")
        offset = _SERIAL_HEADER.size
        blocks: dict[int, int] = {}
        for _ in range(count):
            if len(data) - offset < _SERIAL_BLOCK.size:
                raise ValueError("truncated BitSet block header")
            key, kind, items = _SERIAL_BLOCK.unpack_from(data, offset)
            offset += _SERIAL_BLOCK.size
            _KERNEL.containers_decoded += 1
            if kind == _KIND_ARRAY:
                need = 2 * items
                if len(data) - offset < need:
                    raise ValueError("truncated BitSet array container")
                block = 0
                for value in struct.unpack_from(f">{items}H", data, offset):
                    block |= 1 << value
                offset += need
            elif kind == _KIND_RUNS:
                need = 4 * items
                if len(data) - offset < need:
                    raise ValueError("truncated BitSet run container")
                block = 0
                for _ in range(items):
                    start, length_minus_1 = struct.unpack_from(
                        ">HH", data, offset
                    )
                    offset += 4
                    block |= ((1 << (length_minus_1 + 1)) - 1) << start
            elif kind == _KIND_BITMAP:
                if len(data) - offset < _BLOCK_BYTES:
                    raise ValueError("truncated BitSet bitmap container")
                block = int.from_bytes(
                    data[offset:offset + _BLOCK_BYTES], "little"
                )
                offset += _BLOCK_BYTES
            else:
                raise ValueError(f"unknown BitSet container kind {kind}")
            if block:
                blocks[key] = block
        if offset != len(data):
            raise ValueError("trailing bytes after BitSet serialization")
        return cls._from_blocks(blocks)


def _block_members(block: int) -> list[int]:
    out: list[int] = []
    while block:
        low = block & -block
        out.append(low.bit_length() - 1)
        block ^= low
    return out


def _block_runs(block: int) -> list[tuple[int, int]]:
    """Maximal runs of set bits as ``(start, length)`` pairs."""
    out: list[tuple[int, int]] = []
    while block:
        low = block & -block
        start = low.bit_length() - 1
        tail = block >> start
        length = (tail ^ (tail + 1)).bit_length() - 1
        out.append((start, length))
        block &= ~(((1 << length) - 1) << start)
    return out


# ---------------------------------------------------------------------------
# The reference oracle
# ---------------------------------------------------------------------------


class IntBitSet:
    """The previous single-int implementation, kept as the test oracle.

    A set of non-negative integers backed by one arbitrary-precision
    Python int.  ``tests/test_bitset_compressed.py`` differentially
    checks every :class:`BitSet` operation against this class; it is not
    used on any production path.
    """

    __slots__ = ("_bits",)

    def __init__(self, ids: Iterable[int] = ()) -> None:
        bits = 0
        for i in ids:
            if i < 0:
                raise ValueError(f"BitSet ids must be non-negative, got {i}")
            bits |= 1 << i
        self._bits = bits

    @classmethod
    def from_bits(cls, bits: int) -> "IntBitSet":
        if bits < 0:
            raise ValueError("bit mask must be non-negative")
        out = cls.__new__(cls)
        out._bits = bits
        return out

    @classmethod
    def full(cls, n: int) -> "IntBitSet":
        if n < 0:
            raise ValueError("size must be non-negative")
        return cls.from_bits((1 << n) - 1)

    @property
    def bits(self) -> int:
        return self._bits

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __contains__(self, i: int) -> bool:
        return i >= 0 and (self._bits >> i) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntBitSet):
            return self._bits == other._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return f"IntBitSet({{{', '.join(map(str, self))}}})"

    def add(self, i: int) -> None:
        if i < 0:
            raise ValueError(f"BitSet ids must be non-negative, got {i}")
        self._bits |= 1 << i

    def discard(self, i: int) -> None:
        if i >= 0:
            self._bits &= ~(1 << i)

    def union_update(self, other: "IntBitSet") -> None:
        self._bits |= other._bits

    def clear_bit(self, i: int) -> bool:
        if i < 0 or (self._bits >> i) & 1 == 0:
            return False
        self._bits &= ~(1 << i)
        return True

    def difference_update(self, other: "IntBitSet") -> None:
        self._bits &= ~other._bits

    def __and__(self, other: "IntBitSet") -> "IntBitSet":
        return IntBitSet.from_bits(self._bits & other._bits)

    def __or__(self, other: "IntBitSet") -> "IntBitSet":
        return IntBitSet.from_bits(self._bits | other._bits)

    def __xor__(self, other: "IntBitSet") -> "IntBitSet":
        return IntBitSet.from_bits(self._bits ^ other._bits)

    def __sub__(self, other: "IntBitSet") -> "IntBitSet":
        return IntBitSet.from_bits(self._bits & ~other._bits)

    def intersection(self, other: "IntBitSet") -> "IntBitSet":
        return self & other

    def union(self, other: "IntBitSet") -> "IntBitSet":
        return self | other

    def difference(self, other: "IntBitSet") -> "IntBitSet":
        return self - other

    def isdisjoint(self, other: "IntBitSet") -> bool:
        return self._bits & other._bits == 0

    def intersection_count(self, other: "IntBitSet") -> int:
        return (self._bits & other._bits).bit_count()

    def overlap(self, other: "IntBitSet") -> int:
        return (self._bits & other._bits).bit_count()

    def jaccard(self, other: "IntBitSet") -> float:
        union = (self._bits | other._bits).bit_count()
        if union == 0:
            return 1.0
        return (self._bits & other._bits).bit_count() / union

    def issubset(self, other: "IntBitSet") -> bool:
        return self._bits & ~other._bits == 0

    def issuperset(self, other: "IntBitSet") -> bool:
        return other.issubset(self)

    def offset(self, k: int) -> "IntBitSet":
        if k < 0:
            raise ValueError(f"offset must be non-negative, got {k}")
        return IntBitSet.from_bits(self._bits << k)

    def compact(self, id_map: Mapping[int, int]) -> "IntBitSet":
        bits = 0
        for i in self:
            j = id_map.get(i)
            if j is None:
                continue
            if j < 0:
                raise ValueError(f"compact ids must be non-negative, got {j}")
            bits |= 1 << j
        return IntBitSet.from_bits(bits)

    def copy(self) -> "IntBitSet":
        return IntBitSet.from_bits(self._bits)

    def to_set(self) -> set[int]:
        return set(self)
