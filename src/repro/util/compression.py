"""Optional compression codecs and the on-disk container framing.

The pattern store and the WAL compress *whole files* (occurrence
columns, sealed segments), so the codec layer is deliberately small: a
registry of byte->byte codecs plus a self-describing container header
that names the codec used, letting readers decode without out-of-band
negotiation.

Codecs:

* ``zlib`` — always available (standard library).
* ``zstd`` — registered only when the optional ``zstandard`` package is
  importable.  Nothing in this repository depends on it; ``zlib`` is
  the no-dependency fallback and ``best_codec()`` picks whichever is
  the strongest available.

Container format (``encode_container`` / ``decode_container``)::

    b"RPZ1"                     4-byte magic
    codec name length           1 byte
    codec name                  ascii
    raw (uncompressed) length   8 bytes, big-endian
    compressed payload          rest of file

The magic cannot collide with any existing store file (JSON, the text
database format, SQLite) or with a raw WAL segment, whose first frame
starts with a 4-byte big-endian length far below ``0x52505A31``, so
readers can sniff compressed vs. legacy files with ``is_container``.
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable

from repro.exceptions import CompressionError

__all__ = [
    "available_codecs",
    "best_codec",
    "container_raw_length",
    "decode_container",
    "encode_container",
    "get_codec",
    "is_container",
    "normalize_codec",
]

MAGIC = b"RPZ1"
_RAW_LEN = struct.Struct(">Q")

# name -> (compress, decompress)
_CODECS: dict[str, tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]]
_CODECS = {
    "zlib": (
        lambda data: zlib.compress(data, level=6),
        zlib.decompress,
    ),
}

try:  # pragma: no cover - exercised only when zstandard is installed
    import zstandard as _zstd
except ImportError:
    _zstd = None
else:  # pragma: no cover
    _CODECS["zstd"] = (
        lambda data: _zstd.ZstdCompressor().compress(data),
        lambda data: _zstd.ZstdDecompressor().decompress(data),
    )


def available_codecs() -> tuple[str, ...]:
    """Codec names usable in this installation, strongest first."""
    names = sorted(_CODECS)
    if "zstd" in _CODECS:
        names.remove("zstd")
        names.insert(0, "zstd")
    return tuple(names)


def best_codec() -> str:
    """The strongest codec available here (``zstd`` if installed)."""
    return available_codecs()[0]


def get_codec(
    name: str,
) -> tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]:
    """The ``(compress, decompress)`` pair for ``name``.

    Raises :class:`CompressionError` with a hint when the codec exists
    but is not installed, so a store written with ``zstd`` elsewhere
    fails with an actionable message rather than a KeyError.
    """
    try:
        return _CODECS[name]
    except KeyError:
        if name == "zstd":
            raise CompressionError(
                "codec 'zstd' requires the optional 'zstandard' package "
                "(available codecs: " + ", ".join(available_codecs()) + ")"
            ) from None
        raise CompressionError(
            f"unknown compression codec {name!r} "
            "(available: " + ", ".join(available_codecs()) + ")"
        ) from None


def normalize_codec(name: str | None) -> str | None:
    """Resolve a user-facing codec choice to a registry name.

    ``None`` and ``"none"`` mean no compression; ``"auto"`` picks
    :func:`best_codec`; anything else must name an available codec.
    """
    if name is None or name == "none":
        return None
    if name == "auto":
        return best_codec()
    get_codec(name)
    return name


def encode_container(data: bytes, codec_name: str) -> bytes:
    """Compress ``data`` into a self-describing container."""
    compress, _ = get_codec(codec_name)
    name = codec_name.encode("ascii")
    return b"".join(
        (
            MAGIC,
            bytes((len(name),)),
            name,
            _RAW_LEN.pack(len(data)),
            compress(data),
        )
    )


def is_container(data: bytes) -> bool:
    """Whether ``data`` starts with the compressed-container magic."""
    return data[:4] == MAGIC


def _parse_header(data: bytes) -> tuple[str, int, int]:
    """(codec name, raw length, payload offset) of a container."""
    if not is_container(data):
        raise CompressionError("not a compressed container (bad magic)")
    if len(data) < 5:
        raise CompressionError("truncated compressed container header")
    name_len = data[4]
    end = 5 + name_len
    if len(data) < end + _RAW_LEN.size:
        raise CompressionError("truncated compressed container header")
    try:
        name = data[5:end].decode("ascii")
    except UnicodeDecodeError:
        raise CompressionError("corrupt codec name in container") from None
    (raw_len,) = _RAW_LEN.unpack_from(data, end)
    return name, raw_len, end + _RAW_LEN.size


def container_raw_length(data: bytes) -> int:
    """The uncompressed length recorded in a container header.

    Reads only the header, so sealed WAL segments can report their
    logical size without decompressing.
    """
    _, raw_len, _ = _parse_header(data)
    return raw_len


def decode_container(data: bytes) -> tuple[bytes, str]:
    """Decompress a container; returns ``(raw bytes, codec name)``."""
    name, raw_len, offset = _parse_header(data)
    _, decompress = get_codec(name)
    try:
        raw = decompress(data[offset:])
    except CompressionError:
        raise
    except Exception as exc:
        raise CompressionError(
            f"failed to decompress {name} container: {exc}"
        ) from exc
    if len(raw) != raw_len:
        raise CompressionError(
            "compressed container length mismatch: header says "
            f"{raw_len} bytes, payload decompressed to {len(raw)}"
        )
    return raw, name
