"""Cooperative fault points for the chaos harness.

A fault point is a named hook compiled into a hot path (today:
``wal.fsync``) that normally costs nothing — the hook object only
exists when ``REPRO_FAULTPOINTS_FILE`` is set in the environment, so
production and ordinary test runs skip even the attribute check's
branch body.

When the variable *is* set it names a JSON file mapping fault-point
names to actions::

    {"wal.fsync": {"sleep_ms": 75}}
    {"wal.append": {"errno": 28}}

``sleep_ms`` stalls the hot path; ``errno`` raises ``OSError`` with
that number (28/``ENOSPC`` simulates the WAL volume filling up — the
ingest path must answer 429, not 500, and must not ack the write).

The file is re-read whenever its mtime changes, so the load harness can
switch a fault on and off *mid-run* from outside the process (write the
file, let the ingest path stall, truncate the file to lift it) — which
is exactly how "stall the WAL fsync under load" is injected without any
test-only code path in the WAL itself.  A missing, empty or malformed
file means "no faults", never an error: the instrumented process must
not change behavior because the injector crashed.
"""

from __future__ import annotations

import json
import os
import time

__all__ = ["Faultpoints"]

ENV_VAR = "REPRO_FAULTPOINTS_FILE"


class Faultpoints:
    """Actions read from a control file, keyed by fault-point name."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._mtime_ns: int | None = None
        self._config: dict = {}

    @classmethod
    def from_env(cls) -> "Faultpoints | None":
        """The process-wide instance, or ``None`` when not injecting."""
        path = os.environ.get(ENV_VAR)
        return cls(path) if path else None

    def _refresh(self) -> None:
        try:
            stat = os.stat(self.path)
        except OSError:
            self._config = {}
            self._mtime_ns = None
            return
        if stat.st_mtime_ns == self._mtime_ns:
            return
        try:
            with open(self.path, encoding="utf-8") as handle:
                loaded = json.load(handle)
            self._config = loaded if isinstance(loaded, dict) else {}
        except (OSError, ValueError):
            self._config = {}
        self._mtime_ns = stat.st_mtime_ns

    def fire(self, name: str) -> None:
        """Run the configured action for ``name`` (no-op when absent)."""
        self._refresh()
        spec = self._config.get(name)
        if not isinstance(spec, dict):
            return
        sleep_ms = spec.get("sleep_ms", 0)
        if isinstance(sleep_ms, (int, float)) and sleep_ms > 0:
            time.sleep(float(sleep_ms) / 1000.0)
        error_number = spec.get("errno")
        if isinstance(error_number, int) and error_number > 0:
            raise OSError(error_number, os.strerror(error_number))
