"""Bidirectional string-label <-> integer-id interning.

Graphs and taxonomies store labels internally as small integers; the
interner is the single source of truth for the mapping.  A database and
its taxonomy must share one interner so that a graph node label and the
corresponding taxonomy concept compare equal as ints.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["LabelInterner"]


class LabelInterner:
    """Assigns stable consecutive integer ids to string labels."""

    __slots__ = ("_by_name", "_by_id")

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._by_name: dict[str, int] = {}
        self._by_id: list[str] = []
        for label in labels:
            self.intern(label)

    def intern(self, label: str) -> int:
        """Return the id for ``label``, allocating a new one if needed."""
        existing = self._by_name.get(label)
        if existing is not None:
            return existing
        new_id = len(self._by_id)
        self._by_name[label] = new_id
        self._by_id.append(label)
        return new_id

    def id_of(self, label: str) -> int:
        """Return the id for a label that must already be interned."""
        try:
            return self._by_name[label]
        except KeyError:
            raise KeyError(f"unknown label: {label!r}") from None

    def name_of(self, label_id: int) -> str:
        """Return the string for an interned id."""
        try:
            return self._by_id[label_id]
        except IndexError:
            raise KeyError(f"unknown label id: {label_id}") from None

    def __contains__(self, label: str) -> bool:
        return label in self._by_name

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_id)

    def names(self) -> list[str]:
        """All interned labels in id order (a copy)."""
        return list(self._by_id)

    def copy(self) -> "LabelInterner":
        out = LabelInterner.__new__(LabelInterner)
        out._by_name = dict(self._by_name)
        out._by_id = list(self._by_id)
        return out
