"""Dataset statistics in the shape of the paper's Table 1.

Each row of Table 1 reports: database size (graph count), average graph
size in nodes and in edges, distinct node-label count, and average edge
density, where density follows Worlein et al.: ``2 * |E| / |V|^2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.graph import Graph

__all__ = ["DatabaseStats", "describe_database", "edge_density"]


def edge_density(num_nodes: int, num_edges: int) -> float:
    """Edge density ``2|E| / |V|^2`` (0.0 for graphs with < 1 node)."""
    if num_nodes <= 0:
        return 0.0
    return 2.0 * num_edges / (num_nodes * num_nodes)


@dataclass(frozen=True)
class DatabaseStats:
    """Aggregate properties of a graph database (one Table 1 row)."""

    graph_count: int
    avg_nodes: float
    avg_edges: float
    distinct_label_count: int
    avg_edge_density: float
    max_nodes: int
    max_edges: int

    def as_row(self, db_id: str = "-") -> str:
        """Render as a Table 1-style text row."""
        return (
            f"{db_id:<10} {self.graph_count:>8} {self.avg_nodes:>10.1f} "
            f"{self.avg_edges:>10.1f} {self.distinct_label_count:>12} "
            f"{self.avg_edge_density:>10.2f}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'DB Id':<10} {'Graphs':>8} {'AvgNodes':>10} {'AvgEdges':>10} "
            f"{'Labels':>12} {'Density':>10}"
        )

    def as_gauges(self, prefix: str = "db.") -> dict[str, float]:
        """The ``db.*`` gauge view used by
        :class:`repro.observability.RunReport` on traced runs."""
        return {
            f"{prefix}graphs": float(self.graph_count),
            f"{prefix}avg_nodes": self.avg_nodes,
            f"{prefix}avg_edges": self.avg_edges,
            f"{prefix}distinct_labels": float(self.distinct_label_count),
            f"{prefix}avg_edge_density": self.avg_edge_density,
        }


def describe_database(graphs: Iterable["Graph"]) -> DatabaseStats:
    """Compute Table 1-style statistics for an iterable of graphs."""
    graph_count = 0
    total_nodes = 0
    total_edges = 0
    total_density = 0.0
    max_nodes = 0
    max_edges = 0
    labels: set[int] = set()
    for graph in graphs:
        graph_count += 1
        n, m = graph.num_nodes, graph.num_edges
        total_nodes += n
        total_edges += m
        total_density += edge_density(n, m)
        max_nodes = max(max_nodes, n)
        max_edges = max(max_edges, m)
        labels.update(graph.node_labels())
    if graph_count == 0:
        return DatabaseStats(0, 0.0, 0.0, 0, 0.0, 0, 0)
    return DatabaseStats(
        graph_count=graph_count,
        avg_nodes=total_nodes / graph_count,
        avg_edges=total_edges / graph_count,
        distinct_label_count=len(labels),
        avg_edge_density=total_density / graph_count,
        max_nodes=max_nodes,
        max_edges=max_edges,
    )
