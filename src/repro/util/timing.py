"""Small timing helpers used by benchmarks and the CLI."""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulating wall-clock stopwatch usable as a context manager.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed = 0.0

    def start(self) -> "Stopwatch":
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1000.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
