"""Small timing helpers used by benchmarks, the CLI and observability.

:class:`Stopwatch` is the wall-clock accumulation primitive that
:mod:`repro.observability.trace` builds spans on.  It is *reentrant*:
nested ``with``/``start()`` on the same instance no longer clobbers the
running start time — only the outermost start/stop pair accounts
elapsed time, so recursive phases (a specializer re-entering its own
timer through a callback) measure their true extent exactly once.
"""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulating, reentrant wall-clock stopwatch / context manager.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     with sw:  # nested use is safe: counted once, never reset
    ...         pass
    >>> sw.elapsed >= 0.0
    True
    """

    __slots__ = ("_start", "_depth", "elapsed")

    def __init__(self) -> None:
        self._start: float | None = None
        self._depth = 0
        self.elapsed = 0.0

    def start(self) -> "Stopwatch":
        self._depth += 1
        if self._depth == 1:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._depth == 0:
            raise RuntimeError("stopwatch not running")
        self._depth -= 1
        if self._depth == 0:
            assert self._start is not None
            self.elapsed += time.perf_counter() - self._start
            self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self._depth = 0
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._depth > 0

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1000.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
