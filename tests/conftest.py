"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.graphs.database import GraphDatabase
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.taxonomy.taxonomy import Taxonomy
from repro.util.interner import LabelInterner


def pytest_collection_modifyitems(config, items):
    """Apply the environment gates to marked tests.

    ``slow`` (wide randomized matrices) runs only under ``RUN_SLOW=1``;
    ``chaos`` (fault-injection sweeps over real process trees) runs
    only under ``RUN_CHAOS=1``.  The default (tier-1) run keeps both
    small; CI's ``chaos`` job and the nightly cron set the gates.
    """
    if not os.environ.get("RUN_SLOW"):
        skip_slow = pytest.mark.skip(
            reason="slow test; set RUN_SLOW=1 to run"
        )
        for item in items:
            if "slow" in item.keywords:
                item.add_marker(skip_slow)
    if not os.environ.get("RUN_CHAOS"):
        skip_chaos = pytest.mark.skip(
            reason="chaos test; set RUN_CHAOS=1 to run"
        )
        for item in items:
            if "chaos" in item.keywords:
                item.add_marker(skip_chaos)


def wait_until(
    predicate,
    timeout: float = 30.0,
    interval: float = 0.02,
    message: str = "condition",
):
    """Deadline-based polling — the replacement for bare ``time.sleep``
    in every subprocess/service test.

    Calls ``predicate()`` until it returns a truthy value (returned) or
    the deadline passes (``TimeoutError``).  Exceptions propagate: a
    predicate that must tolerate transient errors (connection refused
    during a restart) catches them itself and returns falsy.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"timed out after {timeout:g}s waiting for {message}"
            )
        time.sleep(interval)


def spawn_cli(args, cwd):
    """Spawn ``python -u -m repro.cli <args>`` with ``src/`` importable.

    One definition for every subprocess test (serving, streaming,
    replication, chaos): unbuffered stdout so ready banners arrive,
    text pipes, and the repo's ``src`` prepended to ``PYTHONPATH``.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parents[1] / "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=cwd,
        env=env,
    )


@pytest.fixture
def go_excerpt() -> Taxonomy:
    """The paper's Figure 1.1 GO excerpt (plus the root)."""
    return taxonomy_from_parent_names(
        {
            "molecular_function": [],
            "transporter": "molecular_function",
            "catalytic_activity": "molecular_function",
            "carrier": "transporter",
            "cation_transporter": "transporter",
            "protein_carrier": "carrier",
            "helicase": "catalytic_activity",
            "dna_helicase": "helicase",
        }
    )


@pytest.fixture
def pathway_db(go_excerpt: Taxonomy) -> GraphDatabase:
    """The Figure 1.2-style two-pathway database over ``go_excerpt``."""
    db = GraphDatabase(node_labels=go_excerpt.interner)
    db.new_graph(
        ["protein_carrier", "cation_transporter", "dna_helicase", "dna_helicase"],
        [(0, 1, "i"), (1, 2, "i"), (2, 3, "i")],
    )
    db.new_graph(
        ["carrier", "helicase", "dna_helicase"],
        [(0, 1, "i"), (1, 2, "i")],
    )
    return db


def make_differential_case(seed: int):
    """Randomized ``(database, taxonomy, sigma)`` triple for the
    differential harness.

    Seeds deterministically cover the taxonomy space: odd seeds produce
    DAGs, seeds divisible by 3 produce multi-root forests.  The sigma
    palette leans high so that a good fraction of cases clear the
    parallel runtime's shard-count floor (``min_count >= 3``) and
    genuinely exercise the multi-process path.
    """
    rng = random.Random(seed)
    interner = LabelInterner()
    taxonomy = make_random_taxonomy(
        rng,
        interner,
        rng.randint(4, 8),
        dag=seed % 2 == 1,
        multiroot=seed % 3 == 0,
    )
    database = make_random_database(rng, taxonomy, rng.randint(3, 5))
    sigma = rng.choice([0.5, 0.67, 0.8, 1.0])
    return database, taxonomy, sigma


@pytest.fixture
def differential_runner():
    """Run oracle, sequential Taxogram, and workers=2 on one seed.

    Returns a callable ``run(seed, max_edges=2) -> (oracle, sequential,
    parallel)`` over the triple from :func:`make_differential_case`; all
    three see identical inputs and the same pattern-size cap.
    """
    from repro.core.oracle import mine_with_oracle
    from repro.core.taxogram import Taxogram, TaxogramOptions

    def run(seed: int, max_edges: int = 2):
        database, taxonomy, sigma = make_differential_case(seed)
        oracle = mine_with_oracle(
            database, taxonomy, sigma, max_edges=max_edges
        )
        sequential = Taxogram(
            TaxogramOptions(min_support=sigma, max_edges=max_edges)
        ).mine(database, taxonomy)
        parallel = Taxogram(
            TaxogramOptions(min_support=sigma, max_edges=max_edges, workers=2)
        ).mine(database, taxonomy)
        return oracle, sequential, parallel

    return run


def make_random_taxonomy(
    rng: random.Random,
    interner: LabelInterner,
    n_labels: int,
    dag: bool = False,
    multiroot: bool = False,
) -> Taxonomy:
    """A random taxonomy for equivalence/property tests."""
    parents: dict[int, tuple[int, ...]] = {}
    n_roots = rng.randint(2, 3) if multiroot else 1
    labels = [interner.intern(f"L{i}") for i in range(n_labels)]
    for index, label in enumerate(labels):
        if index < min(n_roots, n_labels):
            parents[label] = ()
            continue
        plist = [labels[rng.randrange(index)]]
        if dag and index > 1 and rng.random() < 0.35:
            extra = labels[rng.randrange(index)]
            if extra not in plist:
                plist.append(extra)
        parents[label] = tuple(plist)
    return Taxonomy(parents, interner)


def make_random_database(
    rng: random.Random,
    taxonomy: Taxonomy,
    n_graphs: int,
    max_nodes: int = 5,
    max_edges: int = 6,
    edge_labels: tuple[str, ...] = ("x", "y"),
) -> GraphDatabase:
    """A random database whose node labels come from ``taxonomy``."""
    interner = taxonomy.interner
    all_labels = list(taxonomy.labels())
    db = GraphDatabase(node_labels=interner)
    for _ in range(n_graphs):
        n = rng.randint(2, max_nodes)
        node_labels = [interner.name_of(rng.choice(all_labels)) for _ in range(n)]
        edges: list[tuple[int, int, str]] = []
        present: set[tuple[int, int]] = set()
        for _ in range(rng.randint(1, max_edges)):
            u, v = rng.randrange(n), rng.randrange(n)
            key = (min(u, v), max(u, v))
            if u == v or key in present:
                continue
            present.add(key)
            edges.append((u, v, rng.choice(edge_labels)))
        db.new_graph(node_labels, edges)
    return db
