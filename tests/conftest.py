"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs.database import GraphDatabase
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.taxonomy.taxonomy import Taxonomy
from repro.util.interner import LabelInterner


@pytest.fixture
def go_excerpt() -> Taxonomy:
    """The paper's Figure 1.1 GO excerpt (plus the root)."""
    return taxonomy_from_parent_names(
        {
            "molecular_function": [],
            "transporter": "molecular_function",
            "catalytic_activity": "molecular_function",
            "carrier": "transporter",
            "cation_transporter": "transporter",
            "protein_carrier": "carrier",
            "helicase": "catalytic_activity",
            "dna_helicase": "helicase",
        }
    )


@pytest.fixture
def pathway_db(go_excerpt: Taxonomy) -> GraphDatabase:
    """The Figure 1.2-style two-pathway database over ``go_excerpt``."""
    db = GraphDatabase(node_labels=go_excerpt.interner)
    db.new_graph(
        ["protein_carrier", "cation_transporter", "dna_helicase", "dna_helicase"],
        [(0, 1, "i"), (1, 2, "i"), (2, 3, "i")],
    )
    db.new_graph(
        ["carrier", "helicase", "dna_helicase"],
        [(0, 1, "i"), (1, 2, "i")],
    )
    return db


def make_random_taxonomy(
    rng: random.Random,
    interner: LabelInterner,
    n_labels: int,
    dag: bool = False,
    multiroot: bool = False,
) -> Taxonomy:
    """A random taxonomy for equivalence/property tests."""
    parents: dict[int, tuple[int, ...]] = {}
    n_roots = rng.randint(2, 3) if multiroot else 1
    labels = [interner.intern(f"L{i}") for i in range(n_labels)]
    for index, label in enumerate(labels):
        if index < min(n_roots, n_labels):
            parents[label] = ()
            continue
        plist = [labels[rng.randrange(index)]]
        if dag and index > 1 and rng.random() < 0.35:
            extra = labels[rng.randrange(index)]
            if extra not in plist:
                plist.append(extra)
        parents[label] = tuple(plist)
    return Taxonomy(parents, interner)


def make_random_database(
    rng: random.Random,
    taxonomy: Taxonomy,
    n_graphs: int,
    max_nodes: int = 5,
    max_edges: int = 6,
    edge_labels: tuple[str, ...] = ("x", "y"),
) -> GraphDatabase:
    """A random database whose node labels come from ``taxonomy``."""
    interner = taxonomy.interner
    all_labels = list(taxonomy.labels())
    db = GraphDatabase(node_labels=interner)
    for _ in range(n_graphs):
        n = rng.randint(2, max_nodes)
        node_labels = [interner.name_of(rng.choice(all_labels)) for _ in range(n)]
        edges: list[tuple[int, int, str]] = []
        present: set[tuple[int, int]] = set()
        for _ in range(rng.randint(1, max_edges)):
            u, v = rng.randrange(n), rng.randrange(n)
            key = (min(u, v), max(u, v))
            if u == v or key in present:
                continue
            present.add(key)
            edges.append((u, v, rng.choice(edge_labels)))
        db.new_graph(node_labels, edges)
    return db
