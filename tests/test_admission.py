"""Property tests for the admission policy, in isolation.

The policy is pure — ``(kind, depth, lag) -> shed probability`` plus a
seeded RNG for the probabilistic admit and the retry jitter — so its
contracts are checkable exhaustively with Hypothesis, independent of
any HTTP front:

* shedding is monotone non-decreasing in queue depth and in lag;
* ``control`` traffic (health, metrics, lag, flush) is *never* shed,
  whatever the pressure — an overloaded server stays observable and
  drainable;
* below the concurrency limit and the soft lag, nothing is shed;
  at the queue bound (or hard lag), everything is;
* every ``Retry-After`` hint is strictly positive and capped.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.admission import (
    ENDPOINT_KINDS,
    AdmissionController,
    AdmissionLimits,
    AdmissionPolicy,
)

LIMITS = st.builds(
    AdmissionLimits,
    query_concurrency=st.integers(min_value=1, max_value=64),
    ingest_concurrency=st.integers(min_value=1, max_value=64),
    control_concurrency=st.integers(min_value=1, max_value=64),
    queue_factor=st.floats(min_value=1.5, max_value=16.0),
    soft_lag=st.integers(min_value=0, max_value=512),
    hard_lag=st.integers(min_value=513, max_value=4096),
    retry_after_base=st.floats(min_value=0.01, max_value=2.0),
    retry_after_max=st.floats(min_value=2.0, max_value=30.0),
)
KINDS = st.sampled_from(ENDPOINT_KINDS)
DEPTHS = st.integers(min_value=0, max_value=1024)
LAGS = st.integers(min_value=0, max_value=8192)


class TestShedProbability:
    @given(LIMITS, KINDS, DEPTHS, DEPTHS, LAGS)
    def test_monotone_in_depth(self, limits, kind, d1, d2, lag):
        lo, hi = sorted((d1, d2))
        policy = AdmissionPolicy(limits)
        assert policy.shed_probability(kind, lo, lag) <= (
            policy.shed_probability(kind, hi, lag)
        )

    @given(LIMITS, KINDS, DEPTHS, LAGS, LAGS)
    def test_monotone_in_lag(self, limits, kind, depth, l1, l2):
        lo, hi = sorted((l1, l2))
        policy = AdmissionPolicy(limits)
        assert policy.shed_probability(kind, depth, lo) <= (
            policy.shed_probability(kind, depth, hi)
        )

    @given(LIMITS, DEPTHS, LAGS, st.integers())
    def test_control_never_shed(self, limits, depth, lag, seed):
        """Flush/health/metrics must survive any overload."""
        policy = AdmissionPolicy(limits)
        assert policy.shed_probability("control", depth, lag) == 0.0
        decision = policy.decide(
            "control", depth, lag, random.Random(seed)
        )
        assert decision.admitted
        assert decision.retry_after is None

    @given(LIMITS, KINDS)
    def test_unloaded_never_shed(self, limits, kind):
        policy = AdmissionPolicy(limits)
        for depth in range(limits.concurrency(kind) + 1):
            assert policy.shed_probability(kind, depth, 0) == 0.0

    @given(LIMITS, st.sampled_from(("query", "ingest")), st.integers())
    def test_queue_bound_always_sheds(self, limits, kind, seed):
        policy = AdmissionPolicy(limits)
        depth = limits.queue_limit(kind)
        assert policy.shed_probability(kind, depth, 0) == 1.0
        decision = policy.decide(kind, depth, 0, random.Random(seed))
        assert not decision.admitted
        assert decision.reason == "queue_depth"

    @given(LIMITS, st.integers())
    def test_hard_lag_sheds_ingest_only(self, limits, seed):
        policy = AdmissionPolicy(limits)
        lag = limits.hard_lag
        assert policy.shed_probability("ingest", 0, lag) == 1.0
        assert policy.shed_probability("query", 0, lag) == 0.0
        decision = policy.decide("ingest", 0, lag, random.Random(seed))
        assert not decision.admitted
        assert decision.reason == "lag"

    @given(LIMITS, KINDS, DEPTHS, LAGS)
    def test_probability_is_a_probability(self, limits, kind, depth, lag):
        probability = AdmissionPolicy(limits).shed_probability(
            kind, depth, lag
        )
        assert 0.0 <= probability <= 1.0


class TestRetryAfter:
    @given(
        LIMITS,
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(),
    )
    def test_positive_and_bounded(self, limits, probability, seed):
        policy = AdmissionPolicy(limits)
        hint = policy.retry_after(probability, random.Random(seed))
        assert hint > 0.0
        assert hint <= limits.retry_after_max

    @given(LIMITS, KINDS, DEPTHS, LAGS, st.integers())
    def test_every_shed_carries_a_hint(
        self, limits, kind, depth, lag, seed
    ):
        decision = AdmissionPolicy(limits).decide(
            kind, depth, lag, random.Random(seed)
        )
        if decision.admitted:
            assert decision.retry_after is None
        else:
            assert decision.retry_after is not None
            assert 0.0 < decision.retry_after <= limits.retry_after_max

    @settings(max_examples=20)
    @given(LIMITS)
    def test_jitter_spreads_retries(self, limits):
        """Two shed clients should not be told the same instant."""
        policy = AdmissionPolicy(limits)
        rng = random.Random(42)
        hints = {policy.retry_after(0.5, rng) for _ in range(16)}
        # All equal only if every hint hit the cap.
        if len(hints) == 1:
            assert hints == {limits.retry_after_max}


class TestLimitsValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AdmissionLimits(query_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionLimits(queue_factor=1.0)
        with pytest.raises(ValueError):
            AdmissionLimits(soft_lag=8, hard_lag=8)
        with pytest.raises(ValueError):
            AdmissionLimits(retry_after_base=0.0)

    def test_for_max_lag_brackets_the_cli_bound(self):
        limits = AdmissionLimits.for_max_lag(1024)
        assert limits.hard_lag == 1024
        assert limits.soft_lag == 256
        # Degenerate CLI values still yield a valid ramp.
        tiny = AdmissionLimits.for_max_lag(1)
        assert tiny.soft_lag < tiny.hard_lag

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AdmissionLimits().concurrency("websocket")
        with pytest.raises(ValueError):
            AdmissionPolicy().shed_probability("websocket", 0, 0)


class TestController:
    def test_admit_release_bookkeeping(self):
        controller = AdmissionController(seed=0)
        assert controller.try_admit("query").admitted
        assert controller.depth("query") == 1
        controller.release("query")
        assert controller.depth("query") == 0
        with pytest.raises(RuntimeError):
            controller.release("query")

    def test_saturation_sheds_with_metrics(self):
        from repro.observability.metrics import MetricsRegistry

        limits = AdmissionLimits(
            query_concurrency=2, queue_factor=2.0
        )
        metrics = MetricsRegistry()
        controller = AdmissionController(
            AdmissionPolicy(limits), seed=0, metrics=metrics
        )
        decisions = [controller.try_admit("query") for _ in range(32)]
        admitted = sum(1 for d in decisions if d.admitted)
        # In-flight never releases here, so depth hits the queue bound
        # (4) and every later decision is a guaranteed shed.
        assert admitted == controller.depth("query") <= 4
        assert metrics.counter("admission.shed") == 32 - admitted
        assert metrics.counter("admission.shed.query") == 32 - admitted

    def test_seeded_controllers_agree(self):
        limits = AdmissionLimits(query_concurrency=1, queue_factor=3.0)

        def outcomes(seed: int) -> list[bool]:
            controller = AdmissionController(
                AdmissionPolicy(limits), seed=seed
            )
            out = []
            for _ in range(64):
                decision = controller.try_admit("query")
                out.append(decision.admitted)
            return out

        assert outcomes(7) == outcomes(7)

    def test_lag_fn_feeds_ingest_decisions(self):
        limits = AdmissionLimits(soft_lag=0, hard_lag=1)
        controller = AdmissionController(
            AdmissionPolicy(limits), seed=0, lag_fn=lambda: 5
        )
        decision = controller.try_admit("ingest")
        assert not decision.admitted
        assert decision.reason == "lag"
        # Queries ignore lag entirely.
        assert controller.try_admit("query").admitted
