"""Tests for the post-mining analysis toolkit."""

from __future__ import annotations

import pytest

from repro.core.analysis import (
    closed_patterns,
    filter_patterns,
    group_by_class,
    label_depth_profile,
    specialization_edges,
    top_patterns,
)
from repro.core.taxogram import mine
from repro.graphs.database import GraphDatabase
from repro.taxonomy.builders import taxonomy_from_parent_names


@pytest.fixture
def mined():
    tax = taxonomy_from_parent_names(
        {"b": "a", "c": "a", "d": "b", "x": []}
    )
    db = GraphDatabase(node_labels=tax.interner)
    db.new_graph(["d", "x"], [(0, 1)])
    db.new_graph(["d", "x", "c"], [(0, 1), (1, 2)])
    db.new_graph(["c", "x"], [(0, 1)])
    result = mine(db, tax, min_support=0.34)
    return tax, result


class TestFilterPatterns:
    def test_by_support(self, mined):
        tax, result = mined
        strict = filter_patterns(result, min_support=0.9)
        assert strict
        assert all(p.support >= 0.9 for p in strict)
        assert len(strict) <= len(result.patterns)

    def test_by_size(self, mined):
        tax, result = mined
        singles = filter_patterns(result, max_edges=1)
        assert singles and all(p.num_edges == 1 for p in singles)
        doubles = filter_patterns(result, min_edges=2)
        assert all(p.num_edges >= 2 for p in doubles)

    def test_by_concept_subtree(self, mined):
        tax, result = mined
        b = tax.id_of("b")
        involving_b = filter_patterns(result, taxonomy=tax, involves=b)
        assert involving_b
        for pattern in involving_b:
            labels = {
                pattern.graph.node_label(v) for v in pattern.graph.nodes()
            }
            assert labels & set(tax.descendants_or_self(b))

    def test_involves_requires_taxonomy(self, mined):
        _tax, result = mined
        with pytest.raises(ValueError, match="requires the taxonomy"):
            filter_patterns(result, involves=0)

    def test_no_mutation(self, mined):
        _tax, result = mined
        before = list(result.patterns)
        filter_patterns(result, min_support=0.99)
        assert result.patterns == before


class TestGroupsAndLattice:
    def test_group_by_class_shares_structure(self, mined):
        _tax, result = mined
        for members in group_by_class(result).values():
            shapes = {(p.num_nodes, p.num_edges) for p in members}
            assert len(shapes) == 1

    def test_specialization_edges_point_downward(self, mined):
        tax, result = mined
        patterns = result.patterns
        edges = specialization_edges(patterns, tax)
        for general_index, specific_index in edges:
            general = patterns[general_index]
            specific = patterns[specific_index]
            # The general side can never have a strictly higher support.
            assert general.support_count >= specific.support_count
        # In a minimal pattern set, related patterns differ in support.
        for general_index, specific_index in edges:
            assert (
                patterns[general_index].support_count
                != patterns[specific_index].support_count
            )

    def test_lattice_on_known_chain(self):
        tax = taxonomy_from_parent_names({"b": "a", "x": []})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "x"], [(0, 1)])
        db.new_graph(["a", "x"], [(0, 1)])
        result = mine(db, tax, min_support=0.5)
        patterns = result.patterns
        edges = specialization_edges(patterns, tax)
        # a-x (sup 1.0) generalizes b-x (sup 0.5): exactly one edge.
        assert len(edges) == 1


class TestSummaries:
    def test_label_depth_profile(self, mined):
        tax, result = mined
        profile = label_depth_profile(result, tax)
        assert profile
        assert all(depth >= -1 for depth in profile)
        assert sum(profile.values()) == sum(
            p.num_nodes for p in result.patterns
        )

    def test_top_patterns_sorted_and_capped(self, mined):
        _tax, result = mined
        top = top_patterns(result, count=3)
        assert len(top) == min(3, len(result.patterns))
        supports = [p.support_count for p in top]
        assert supports == sorted(supports, reverse=True)

    def test_top_patterns_large_count(self, mined):
        _tax, result = mined
        assert len(top_patterns(result, count=10_000)) == len(result.patterns)


class TestClosedPatterns:
    def test_subpattern_with_equal_support_absorbed(self):
        tax = taxonomy_from_parent_names({"b": "a", "x": [], "y": []})
        db = GraphDatabase(node_labels=tax.interner)
        # Every graph contains the full path b-x-y, so b-x and x-y are
        # absorbed by the 2-edge pattern (equal support).
        db.new_graph(["b", "x", "y"], [(0, 1), (1, 2)])
        db.new_graph(["b", "x", "y"], [(0, 1), (1, 2)])
        result = mine(db, tax, min_support=1.0)
        closed = closed_patterns(result, tax)
        assert len(closed) < len(result.patterns)
        assert max(p.num_edges for p in closed) == 2
        # The maximal pattern itself survives.
        assert any(p.num_edges == 2 for p in closed)
        assert all(p.num_edges == 2 for p in closed)

    def test_distinct_support_kept(self):
        tax = taxonomy_from_parent_names({"b": "a", "x": []})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "x", "x"], [(0, 1), (1, 2)])
        db.new_graph(["b", "x"], [(0, 1)])
        result = mine(db, tax, min_support=0.5)
        closed = closed_patterns(result, tax)
        # b-x has support 1.0, the path only 0.5: both are closed.
        supports = sorted(p.support for p in closed)
        assert 1.0 in supports
        assert 0.5 in supports

    def test_closed_is_subset(self, mined):
        tax, result = mined
        closed = closed_patterns(result, tax)
        codes = {p.code for p in result}
        assert all(p.code in codes for p in closed)
        assert len(closed) <= len(result.patterns)
