"""In-process tests for the asyncio HTTP front.

Two contracts:

* **Byte parity** — both front-ends serve the *same* endpoint
  functions (:mod:`repro.serving.endpoints`), so for any request the
  asyncio front's status and body must equal the threaded server's,
  byte for byte.  The A/B benchmark and the router both lean on this.
* **Real backpressure** — with an :class:`AdmissionController`
  attached, saturating a kind's queue yields 429s with a positive
  decimal ``Retry-After``, never a hang or a 500, and control
  endpoints keep answering throughout.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.graphs.database import GraphDatabase
from repro.serving import StoreHTTPServer, StoreReader
from repro.serving.admission import (
    AdmissionController,
    AdmissionLimits,
    AdmissionPolicy,
)
from repro.serving.aserver import AsyncHTTPFront, serve_async
from repro.serving.endpoints import Endpoint, RouteTable
from repro.taxonomy.builders import taxonomy_from_parent_names
from tests.conftest import wait_until

PATTERN = "t # 0\nv 0 b\nv 1 c\ne 0 1 x\n"


@pytest.fixture
def store_dir(tmp_path):
    taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a"})
    db = GraphDatabase(node_labels=taxonomy.interner)
    for name in ["x", "x", "y"]:
        db.new_graph(["b", "c"], [(0, 1, name)])
    out = tmp_path / "store"
    Taxogram(
        TaxogramOptions(min_support=0.4, store_out=str(out))
    ).mine(db, taxonomy)
    return out


@pytest.fixture
def async_front(store_dir):
    front, _reader = serve_async(store_dir)
    host, port = front.start_background()
    try:
        yield front, f"{host}:{port}"
    finally:
        front.stop_background()


@pytest.fixture
def threaded_server(store_dir):
    server = StoreHTTPServer(("127.0.0.1", 0), StoreReader(store_dir))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[0], server.server_address[1]
    try:
        yield f"{host}:{port}"
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()


def _raw(address: str, method: str, path: str, body: dict | None = None):
    """Status and exact body bytes, bypassing urllib's error mapping."""
    connection = http.client.HTTPConnection(address, timeout=30)
    try:
        payload = None if body is None else json.dumps(body).encode()
        headers = {} if body is None else {
            "Content-Type": "application/json"
        }
        connection.request(method, path, payload, headers)
        response = connection.getresponse()
        return response.status, response.read(), dict(
            response.getheaders()
        )
    finally:
        connection.close()


class TestByteParity:
    CASES = [
        ("GET", "/health", None),
        ("GET", "/top?k=3", None),
        ("GET", "/nope", None),
        ("POST", "/query", {"op": "support", "pattern": PATTERN}),
        ("POST", "/query", {"op": "graphs", "pattern": PATTERN}),
        ("POST", "/query", {"op": "support", "pattern": "t # 0\nv 0 zz\n"}),
        ("POST", "/query", {"op": "nonsense"}),
    ]

    def test_same_bytes_both_fronts(self, async_front, threaded_server):
        _front, async_address = async_front
        for method, path, body in self.CASES:
            a_status, a_body, _ = _raw(async_address, method, path, body)
            t_status, t_body, _ = _raw(threaded_server, method, path, body)
            assert a_status == t_status, (method, path)
            assert a_body == t_body, (method, path)

    def test_metrics_adds_front_block(self, async_front, threaded_server):
        _front, async_address = async_front
        _, a_body, _ = _raw(async_address, "GET", "/metrics")
        _, t_body, _ = _raw(threaded_server, "GET", "/metrics")
        a_doc, t_doc = json.loads(a_body), json.loads(t_body)
        front_block = a_doc.pop("front")
        assert set(front_block) >= {"requests", "latency"}
        assert a_doc == t_doc

    def test_keep_alive_reuses_the_connection(self, async_front):
        _front, address = async_front
        connection = http.client.HTTPConnection(address, timeout=30)
        try:
            for _ in range(3):
                connection.request("GET", "/health")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()


class TestLifecycle:
    def test_max_requests_stops_the_front(self, store_dir):
        front, _reader = serve_async(store_dir, max_requests=2)
        host, port = front.start_background()
        address = f"{host}:{port}"
        assert _raw(address, "GET", "/health")[0] == 200
        assert _raw(address, "GET", "/health")[0] == 200
        if front._thread is not None:
            front._thread.join(timeout=30)
        with pytest.raises(OSError):
            _raw(address, "GET", "/health")

    def test_bind_error_surfaces(self, store_dir):
        front, _ = serve_async(store_dir)
        host, port = front.start_background()
        try:
            clash, _ = serve_async(store_dir, port=port)
            with pytest.raises(OSError):
                clash.start_background()
        finally:
            front.stop_background()

    def test_malformed_request_line_is_400(self, async_front):
        _front, address = async_front
        connection = http.client.HTTPConnection(address, timeout=30)
        try:
            connection.request("BREW", "/health")
            assert connection.getresponse().status in (400, 404, 405)
        finally:
            connection.close()


class TestBackpressure:
    def _slow_routes(self, release: threading.Event) -> RouteTable:
        def handler(request):
            release.wait(timeout=30)
            return 200, {"ok": True}, {}

        def control(request):
            return 200, {"ok": True}, {}

        return RouteTable([
            Endpoint("GET", "/slow", "slow", "query", handler),
            Endpoint("GET", "/ctl", "ctl", "control", control),
        ])

    def test_saturation_sheds_429_and_control_survives(self):
        release = threading.Event()
        limits = AdmissionLimits(query_concurrency=2, queue_factor=2.0)
        controller = AdmissionController(
            AdmissionPolicy(limits), seed=0
        )
        front = AsyncHTTPFront(
            self._slow_routes(release), admission=controller
        )
        host, port = front.start_background()
        address = f"{host}:{port}"
        url = f"http://{address}"
        results: list[tuple[int | None, dict]] = []
        lock = threading.Lock()

        def hit():
            try:
                with urllib.request.urlopen(
                    url + "/slow", timeout=30
                ) as response:
                    outcome = (response.status, dict(response.headers))
            except urllib.error.HTTPError as exc:
                outcome = (exc.code, dict(exc.headers))
            with lock:
                results.append(outcome)

        threads = [
            threading.Thread(target=hit, daemon=True) for _ in range(24)
        ]
        try:
            for thread in threads:
                thread.start()
            # Wait until the queue bound (4) guarantees sheds arrive.
            wait_until(
                lambda: any(s == 429 for s, _ in results),
                message="a shed response",
            )
            # Control traffic answers while queries are saturated.
            assert _raw(address, "GET", "/ctl")[0] == 200
        finally:
            release.set()
            for thread in threads:
                thread.join(timeout=30)
            front.stop_background()
        statuses = [status for status, _ in results]
        assert statuses.count(200) >= 2
        assert 429 in statuses
        assert all(status in (200, 429) for status in statuses)
        for status, headers in results:
            if status == 429:
                retry_after = float(headers["Retry-After"])
                assert 0.0 < retry_after <= limits.retry_after_max

    def test_handler_crash_is_500_not_a_hang(self):
        def boom(request):
            raise RuntimeError("kaboom")

        routes = RouteTable(
            [Endpoint("GET", "/boom", "boom", "query", boom)]
        )
        front = AsyncHTTPFront(routes)
        host, port = front.start_background()
        try:
            status, body, _ = _raw(f"{host}:{port}", "GET", "/boom")
            assert status == 500
            assert b"error" in body
            assert front.stats()["internal_errors"] == 1
        finally:
            front.stop_background()

    def test_latency_histograms_fill(self, async_front):
        front, address = async_front
        for _ in range(5):
            assert _raw(address, "GET", "/top?k=2")[0] == 200
        # Latency is observed before the response bytes go out but the
        # request counter increments after, so poll both rather than
        # race the last request's bookkeeping.
        wait_until(
            lambda: (
                front.stats()["latency"]["query"]["count"] >= 5
                and front.stats()["requests"] >= 5
            ),
            message="request accounting to settle",
        )
        stats = front.stats()
        assert stats["requests"] >= 5
        assert stats["latency"]["query"]["p99_ms"] > 0.0


class TestAdmissionReleaseOnShed:
    def test_depth_returns_to_zero(self, store_dir):
        controller = AdmissionController(seed=0)
        front, _ = serve_async(store_dir, admission=controller)
        host, port = front.start_background()
        try:
            for _ in range(8):
                _raw(f"{host}:{port}", "GET", "/top?k=1")
            wait_until(
                lambda: controller.depth("query") == 0,
                message="in-flight count to drain",
            )
        finally:
            front.stop_background()
