"""Unit and property tests for :mod:`repro.util.bitset`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitset import BitSet

id_sets = st.sets(st.integers(min_value=0, max_value=300), max_size=40)


class TestConstruction:
    def test_empty(self):
        bs = BitSet()
        assert len(bs) == 0
        assert not bs
        assert list(bs) == []

    def test_from_iterable(self):
        bs = BitSet([3, 1, 4, 1, 5])
        assert sorted(bs) == [1, 3, 4, 5]
        assert len(bs) == 4

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            BitSet([-1])

    def test_from_bits(self):
        assert BitSet.from_bits(0b1011).to_set() == {0, 1, 3}

    def test_from_bits_negative_rejected(self):
        with pytest.raises(ValueError):
            BitSet.from_bits(-1)

    def test_full(self):
        assert BitSet.full(4).to_set() == {0, 1, 2, 3}
        assert BitSet.full(0).to_set() == set()

    def test_full_negative_rejected(self):
        with pytest.raises(ValueError):
            BitSet.full(-2)


class TestMembershipAndMutation:
    def test_contains(self):
        bs = BitSet([2, 7])
        assert 2 in bs
        assert 7 in bs
        assert 3 not in bs
        assert -1 not in bs

    def test_add_discard(self):
        bs = BitSet()
        bs.add(5)
        assert 5 in bs
        bs.discard(5)
        assert 5 not in bs

    def test_discard_missing_is_noop(self):
        bs = BitSet([1])
        bs.discard(9)
        bs.discard(-3)
        assert bs.to_set() == {1}

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            BitSet().add(-2)

    def test_union_update(self):
        bs = BitSet([1, 2])
        bs.union_update(BitSet([2, 5]))
        assert bs.to_set() == {1, 2, 5}

    def test_union_update_leaves_other_unchanged(self):
        other = BitSet([3])
        BitSet([1]).union_update(other)
        assert other.to_set() == {3}

    def test_union_update_with_empty_is_noop(self):
        bs = BitSet([4])
        bs.union_update(BitSet())
        assert bs.to_set() == {4}


class TestAlgebra:
    def test_and(self):
        assert (BitSet([1, 2, 3]) & BitSet([2, 3, 4])).to_set() == {2, 3}

    def test_or(self):
        assert (BitSet([1]) | BitSet([2])).to_set() == {1, 2}

    def test_xor(self):
        assert (BitSet([1, 2]) ^ BitSet([2, 3])).to_set() == {1, 3}

    def test_sub(self):
        assert (BitSet([1, 2, 3]) - BitSet([2])).to_set() == {1, 3}

    def test_subset_superset(self):
        small, big = BitSet([1, 2]), BitSet([1, 2, 3])
        assert small.issubset(big)
        assert big.issuperset(small)
        assert not big.issubset(small)

    def test_disjoint(self):
        assert BitSet([1]).isdisjoint(BitSet([2]))
        assert not BitSet([1, 2]).isdisjoint(BitSet([2]))

    def test_equality_and_hash(self):
        assert BitSet([1, 2]) == BitSet([2, 1])
        assert hash(BitSet([1, 2])) == hash(BitSet([2, 1]))
        assert BitSet([1]) != BitSet([2])

    def test_copy_is_independent(self):
        original = BitSet([1])
        copy = original.copy()
        copy.add(2)
        assert original.to_set() == {1}

    def test_repr_lists_members(self):
        assert repr(BitSet([2, 0])) == "BitSet({0, 2})"

    def test_offset(self):
        assert BitSet([0, 2]).offset(3).to_set() == {3, 5}

    def test_offset_zero_is_copy(self):
        original = BitSet([1, 4])
        shifted = original.offset(0)
        assert shifted == original
        shifted.add(9)
        assert original.to_set() == {1, 4}

    def test_offset_negative_rejected(self):
        with pytest.raises(ValueError):
            BitSet([1]).offset(-1)


class TestIncrementalMaintenance:
    def test_clear_bit_present(self):
        bs = BitSet([1, 5])
        assert bs.clear_bit(5) is True
        assert bs.to_set() == {1}

    def test_clear_bit_absent(self):
        bs = BitSet([1])
        assert bs.clear_bit(3) is False
        assert bs.clear_bit(-2) is False
        assert bs.to_set() == {1}

    def test_difference_update(self):
        bs = BitSet([1, 2, 3])
        bs.difference_update(BitSet([2, 9]))
        assert bs.to_set() == {1, 3}

    def test_difference_update_leaves_other_unchanged(self):
        other = BitSet([1, 2])
        BitSet([2]).difference_update(other)
        assert other.to_set() == {1, 2}

    def test_compact_renumbers(self):
        bs = BitSet([0, 2, 5])
        assert bs.compact({0: 0, 2: 1, 5: 2}).to_set() == {0, 1, 2}

    def test_compact_drops_unmapped(self):
        assert BitSet([0, 1, 2]).compact({1: 0}).to_set() == {0}

    def test_compact_returns_new_instance(self):
        original = BitSet([3])
        compacted = original.compact({3: 0})
        compacted.add(7)
        assert original.to_set() == {3}

    def test_compact_negative_target_rejected(self):
        with pytest.raises(ValueError):
            BitSet([1]).compact({1: -1})


class TestHypothesis:
    @given(id_sets, id_sets)
    def test_and_matches_set_intersection(self, a, b):
        assert (BitSet(a) & BitSet(b)).to_set() == a & b

    @given(id_sets, id_sets)
    def test_or_matches_set_union(self, a, b):
        assert (BitSet(a) | BitSet(b)).to_set() == a | b

    @given(id_sets, id_sets)
    def test_difference_matches_set_difference(self, a, b):
        assert (BitSet(a) - BitSet(b)).to_set() == a - b

    @given(id_sets)
    def test_roundtrip_and_len(self, a):
        bs = BitSet(a)
        assert bs.to_set() == a
        assert len(bs) == len(a)

    @given(id_sets, id_sets)
    def test_subset_consistent(self, a, b):
        assert BitSet(a).issubset(BitSet(b)) == (a <= b)

    @given(id_sets)
    def test_iteration_sorted_ascending(self, a):
        assert list(BitSet(a)) == sorted(a)

    @given(id_sets, id_sets)
    def test_union_update_matches_set_union(self, a, b):
        bs = BitSet(a)
        bs.union_update(BitSet(b))
        assert bs.to_set() == a | b

    @given(id_sets, st.integers(min_value=0, max_value=64))
    def test_offset_shifts_every_member(self, a, k):
        assert BitSet(a).offset(k).to_set() == {i + k for i in a}

    @given(id_sets, id_sets, st.integers(min_value=0, max_value=64))
    def test_offset_distributes_over_union(self, a, b, k):
        # The merge layer relies on shift-then-OR == OR-then-shift.
        left = BitSet(a).offset(k) | BitSet(b).offset(k)
        right = (BitSet(a) | BitSet(b)).offset(k)
        assert left == right

    @given(id_sets, st.integers(min_value=0, max_value=300))
    def test_clear_bit_matches_set_discard(self, a, i):
        bs = BitSet(a)
        assert bs.clear_bit(i) == (i in a)
        assert bs.to_set() == a - {i}

    @given(id_sets, id_sets)
    def test_difference_update_matches_set_difference(self, a, b):
        bs = BitSet(a)
        bs.difference_update(BitSet(b))
        assert bs.to_set() == a - b

    @given(id_sets, id_sets)
    def test_compact_matches_mapped_survivors(self, a, survivors):
        # A dense renumbering of the survivor set, exactly as the
        # occurrence-column compaction builds it.
        id_map = {i: n for n, i in enumerate(sorted(survivors))}
        expected = {id_map[i] for i in a & survivors}
        assert BitSet(a).compact(id_map).to_set() == expected

    @given(id_sets)
    def test_compact_identity_map_roundtrips(self, a):
        identity = {i: i for i in a}
        assert BitSet(a).compact(identity).to_set() == a

    @given(id_sets, id_sets)
    def test_overlap_matches_intersection_size(self, a, b):
        assert BitSet(a).overlap(BitSet(b)) == len(a & b)

    @given(id_sets, id_sets)
    def test_jaccard_matches_set_definition(self, a, b):
        expected = 1.0 if not (a | b) else len(a & b) / len(a | b)
        assert BitSet(a).jaccard(BitSet(b)) == expected

    @given(id_sets, id_sets)
    def test_jaccard_bounds_and_symmetry(self, a, b):
        left = BitSet(a).jaccard(BitSet(b))
        assert 0.0 <= left <= 1.0
        assert left == BitSet(b).jaccard(BitSet(a))

    @given(id_sets)
    def test_jaccard_self_is_one(self, a):
        assert BitSet(a).jaccard(BitSet(a)) == 1.0
