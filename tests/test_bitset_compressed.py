"""Property suite: the compressed BitSet against the IntBitSet oracle.

PR 9 replaced :class:`repro.util.bitset.BitSet`'s single-int internals
with a roaring-style blocked representation; the old implementation is
kept verbatim as :class:`repro.util.bitset.IntBitSet` purely so this
suite can differentially check every operation against it.  Hypothesis
drives id sets that straddle the 65536-id block boundary, so the
sorted-array, run-length and dense-bitmap container paths all get
exercised (one test asserts all three kinds actually occur in the
serialized form).
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitset import (
    BLOCK_BITS,
    BitSet,
    IntBitSet,
)

# Big-set cases (full blocks, 200k-member ranges) legitimately take
# longer than Hypothesis's default 200 ms deadline on shared CI
# runners; correctness, not latency, is what this suite pins.
no_deadline = settings(deadline=None)

# Ids concentrated on the interesting coordinates: small, around the
# first block boundary, and a couple of blocks out.
_ids = st.one_of(
    st.integers(min_value=0, max_value=192),
    st.integers(min_value=BLOCK_BITS - 4, max_value=BLOCK_BITS + 4),
    st.integers(min_value=0, max_value=4 * BLOCK_BITS),
)

# A run of consecutive ids (exercises the run-length container).
_runs = st.builds(
    lambda start, length: list(range(start, start + length)),
    st.integers(min_value=0, max_value=2 * BLOCK_BITS),
    st.integers(min_value=1, max_value=300),
)

_id_sets = st.one_of(
    st.lists(_ids, max_size=60).map(set),
    _runs.map(set),
    st.tuples(st.lists(_ids, max_size=30).map(set), _runs.map(set)).map(
        lambda pair: pair[0] | pair[1]
    ),
)


def _pair(ids):
    return BitSet(ids), IntBitSet(ids)


def _check(new: BitSet, oracle: IntBitSet) -> None:
    """The full observational equality battery for one value pair."""
    assert new.to_set() == oracle.to_set()
    assert len(new) == len(oracle)
    assert bool(new) == bool(oracle)
    assert list(new) == list(oracle)  # both iterate in ascending order
    assert new.bits == oracle.bits


class TestConstruction:
    @no_deadline
    @given(_id_sets)
    def test_roundtrip_and_len(self, ids):
        _check(*_pair(ids))

    @no_deadline
    @given(_id_sets)
    def test_from_bits_matches(self, ids):
        oracle = IntBitSet(ids)
        assert BitSet.from_bits(oracle.bits).to_set() == set(ids)

    @no_deadline
    @given(st.integers(min_value=0, max_value=3 * BLOCK_BITS + 7))
    def test_full(self, n):
        assert BitSet.full(n).to_set() == IntBitSet.full(n).to_set()

    @no_deadline
    @given(_id_sets, _ids)
    def test_contains(self, ids, probe):
        new, oracle = _pair(ids)
        assert (probe in new) == (probe in oracle)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            BitSet([-1])
        with pytest.raises(ValueError):
            BitSet().add(-5)


class TestBinaryOps:
    @no_deadline
    @given(_id_sets, _id_sets)
    def test_and_or_xor_sub(self, a, b):
        na, oa = _pair(a)
        nb, ob = _pair(b)
        for op in ("__and__", "__or__", "__xor__", "__sub__"):
            _check(getattr(na, op)(nb), getattr(oa, op)(ob))

    @no_deadline
    @given(_id_sets, _id_sets)
    def test_named_aliases(self, a, b):
        na, oa = _pair(a)
        nb, ob = _pair(b)
        assert na.intersection(nb).to_set() == oa.intersection(ob).to_set()
        assert na.union(nb).to_set() == oa.union(ob).to_set()
        assert na.difference(nb).to_set() == oa.difference(ob).to_set()

    @no_deadline
    @given(_id_sets, _id_sets)
    def test_counting_kernels(self, a, b):
        na, oa = _pair(a)
        nb, ob = _pair(b)
        assert na.intersection_count(nb) == oa.intersection_count(ob)
        assert na.overlap(nb) == oa.overlap(ob)
        assert na.jaccard(nb) == pytest.approx(oa.jaccard(ob))
        assert na.isdisjoint(nb) == oa.isdisjoint(ob)
        assert na.issubset(nb) == oa.issubset(ob)
        assert na.issuperset(nb) == oa.issuperset(ob)

    @no_deadline
    @given(_id_sets, _id_sets)
    def test_equality_and_hash(self, a, b):
        na, nb = BitSet(a), BitSet(b)
        assert (na == nb) == (set(a) == set(b))
        if na == nb:
            assert hash(na) == hash(nb)


class TestMutation:
    @no_deadline
    @given(_id_sets, _ids)
    def test_add_discard(self, ids, extra):
        new, oracle = _pair(ids)
        new.add(extra)
        oracle.add(extra)
        _check(new, oracle)
        new.discard(extra)
        oracle.discard(extra)
        _check(new, oracle)

    @no_deadline
    @given(_id_sets, _ids)
    def test_clear_bit(self, ids, victim):
        new, oracle = _pair(ids)
        assert new.clear_bit(victim) == oracle.clear_bit(victim)
        _check(new, oracle)

    @no_deadline
    @given(_id_sets, _id_sets)
    def test_union_update(self, a, b):
        na, oa = _pair(a)
        na.union_update(BitSet(b))
        oa.union_update(IntBitSet(b))
        _check(na, oa)

    @no_deadline
    @given(_id_sets, _id_sets)
    def test_difference_update(self, a, b):
        na, oa = _pair(a)
        na.difference_update(BitSet(b))
        oa.difference_update(IntBitSet(b))
        _check(na, oa)

    @no_deadline
    @given(_id_sets)
    def test_copy_is_independent(self, ids):
        new = BitSet(ids)
        dup = new.copy()
        dup.add(3 * BLOCK_BITS + 11)
        assert new.to_set() == set(ids)


class TestShiftingAndRemapping:
    @settings(max_examples=60, deadline=None)
    @given(_id_sets, st.integers(min_value=0, max_value=2 * BLOCK_BITS + 3))
    def test_offset(self, ids, k):
        new, oracle = _pair(ids)
        _check(new.offset(k), oracle.offset(k))

    @no_deadline
    @given(_id_sets, st.integers(min_value=0, max_value=40))
    def test_compact(self, ids, salt):
        # A non-monotonic but injective renumbering that drops every
        # third member — the updater's compaction shape.
        id_map = {
            i: (i * 7 + salt) % (5 * BLOCK_BITS)
            for n, i in enumerate(sorted(ids))
            if n % 3 != 0
        }
        if len(set(id_map.values())) != len(id_map):
            id_map = {i: n for n, i in enumerate(sorted(id_map))}
        new, oracle = _pair(ids)
        _check(new.compact(id_map), oracle.compact(id_map))


class TestSerialization:
    @no_deadline
    @given(_id_sets)
    def test_roundtrip(self, ids):
        new = BitSet(ids)
        data = new.to_bytes()
        back = BitSet.from_bytes(data)
        assert back == new
        assert back.to_set() == IntBitSet(ids).to_set()

    def test_all_three_container_kinds_occur(self):
        sparse = BitSet([1, 77, 300])  # array wins: 3 members
        dense = BitSet(range(0, BLOCK_BITS, 2))  # bitmap wins
        contiguous = BitSet(range(500, 5000))  # one run wins
        kinds = set()
        for value in (sparse, dense, contiguous):
            data = value.to_bytes()
            kinds.add(struct.unpack_from(">IBH", data, 5)[1])
            assert BitSet.from_bytes(data) == value
        assert kinds == {0, 1, 2}  # array, runs, bitmap

    def test_boundary_members_roundtrip(self):
        ids = {0, BLOCK_BITS - 1, BLOCK_BITS, 2 * BLOCK_BITS - 1,
               2 * BLOCK_BITS}
        value = BitSet(ids)
        assert BitSet.from_bytes(value.to_bytes()).to_set() == ids

    def test_empty_roundtrip(self):
        assert BitSet.from_bytes(BitSet().to_bytes()) == BitSet()

    @no_deadline
    @given(_id_sets)
    def test_truncation_rejected(self, ids):
        data = BitSet(ids).to_bytes()
        if len(data) > 5:
            with pytest.raises(ValueError):
                BitSet.from_bytes(data[:-1])

    def test_bad_version_and_trailing_bytes_rejected(self):
        data = BitSet([1, 2]).to_bytes()
        with pytest.raises(ValueError):
            BitSet.from_bytes(b"\x09" + data[1:])
        with pytest.raises(ValueError):
            BitSet.from_bytes(data + b"\x00")
