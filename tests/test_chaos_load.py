"""Chaos under load: fault injection against real process trees.

The bounded applier-crash test runs in tier-1 (one SIGKILL + restart,
fixed seed, ~10s wall).  The wider sweeps — fsync stalls, follower
kills behind a router, torn WAL tails — are ``chaos``-marked and run
with ``RUN_CHAOS=1`` (the CI chaos job); the randomized sweep is
``slow``-marked for the nightly.

Every scenario asserts the same three invariants the harness exists
for: no acked write is ever lost, versions served to one client never
move backwards, and error rates stay inside the declared backpressure
envelope.
"""

from __future__ import annotations

import json
import os
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.graphs.database import GraphDatabase
from repro.graphs.io import write_graph_database
from repro.loadtest import (
    Envelope,
    FaultInjector,
    LoadOptions,
    LoadRunner,
    build_plan,
    verify_no_lost_acks,
    verify_version_monotonic,
)
from repro.loadtest.cluster import (
    spawn_follower,
    spawn_ingest,
    spawn_router,
)
from repro.loadtest.faults import (
    FaultEvent,
    append_torn_frame,
    disk_full,
    kill_and_restart,
    seeded_scenario_plan,
    stall_fsync,
    truncate_segment,
)
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.taxonomy.io import write_taxonomy
from tests.conftest import wait_until

ADD = "t # 0\nv 0 b\nv 1 c\ne 0 1 x\n"
PATTERN = "t # 0\nv 0 a\nv 1 a\ne 0 1 x\n"


def _mined_store(tmp_path: Path) -> Path:
    taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a"})
    db = GraphDatabase(node_labels=taxonomy.interner)
    for name in ["x", "x", "y"]:
        db.new_graph(["b", "c"], [(0, 1, name)])
    write_taxonomy(taxonomy, str(tmp_path / "tax.txt"))
    write_graph_database(db, str(tmp_path / "db.graphs"))
    store = tmp_path / "store"
    assert main(
        ["mine", str(tmp_path / "db.graphs"), str(tmp_path / "tax.txt"),
         "--support", "0.4", "--store-out", str(store)]
    ) == 0
    return store


def _record(name: str, report, **extra) -> None:
    """Append the run's latency report to ``REPRO_BENCH_JSON_DIR`` (the
    CI chaos job uploads these as artifacts); no-op when unset."""
    bench_dir = os.environ.get("REPRO_BENCH_JSON_DIR")
    if not bench_dir:
        return
    Path(bench_dir).mkdir(parents=True, exist_ok=True)
    path = Path(bench_dir) / "BENCH_chaos.json"
    points = json.loads(path.read_text()) if path.exists() else []
    doc = report.as_dict()
    doc["scenario"] = name
    doc.update(extra)
    points.append(doc)
    path.write_text(json.dumps(points, indent=2, sort_keys=True) + "\n")


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _post(url: str, doc: dict) -> dict:
    request = urllib.request.Request(
        url,
        json.dumps(doc).encode("utf-8"),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


class TestApplierCrashUnderLoad:
    """Tier-1 bounded drill: SIGKILL the serving ingester mid-run."""

    def test_sigkill_mid_run_loses_no_acked_write(self, tmp_path):
        store = _mined_store(tmp_path)
        process = spawn_ingest(store, tmp_path / "wal", cwd=tmp_path)
        process.start()
        try:
            options = LoadOptions(
                duration_seconds=4.0, rate=25.0, seed=7, workers=4
            )
            plan = build_plan(options, [PATTERN], [ADD])
            injector = FaultInjector([
                FaultEvent(
                    2.0, "kill_applier",
                    lambda: kill_and_restart(process),
                )
            ])
            injector.start()
            try:
                report = LoadRunner(process.url, plan, workers=4).run()
            finally:
                injector.join()
            assert injector.fired == ["kill_applier"]
            assert injector.errors == []
            # Requests in flight across the kill fail at the socket;
            # everything else must be clean.
            Envelope(max_transport_fraction=0.75).check(report)
            assert report.counts["ok"] > 0
            verify_no_lost_acks(process.url, report)
            verify_version_monotonic(report)
            _record("applier-sigkill", report, seed=options.seed)
        finally:
            process.terminate()


@pytest.mark.chaos
class TestChaosSweeps:
    def test_fsync_stall_sheds_but_loses_nothing(self, tmp_path):
        store = _mined_store(tmp_path)
        faultpoints = tmp_path / "faultpoints.json"
        stall_fsync(faultpoints, 0)
        process = spawn_ingest(
            store, tmp_path / "wal", cwd=tmp_path, max_lag=8,
            env={"REPRO_FAULTPOINTS_FILE": str(faultpoints)},
        )
        process.start()
        try:
            options = LoadOptions(
                duration_seconds=5.0, rate=40.0, seed=11, workers=6,
                wait_fraction=0.0,
            )
            plan = build_plan(options, [PATTERN], [ADD])
            injector = FaultInjector([
                FaultEvent(
                    1.0, "stall_fsync",
                    lambda: stall_fsync(faultpoints, 200),
                ),
                FaultEvent(
                    3.5, "clear_stall",
                    lambda: stall_fsync(faultpoints, 0),
                ),
            ])
            injector.start()
            try:
                report = LoadRunner(process.url, plan, workers=6).run()
            finally:
                injector.join()
            assert injector.errors == []
            # Stalled fsyncs slow acks and push lag over the bound, so
            # sheds are expected — errors and losses are not.
            Envelope().check(report)
            verify_no_lost_acks(process.url, report)
            verify_version_monotonic(report)
            _record("fsync-stall", report, seed=options.seed)
        finally:
            process.terminate()

    def test_follower_kill_behind_router_and_rejoin(self, tmp_path):
        store = _mined_store(tmp_path)
        primary = spawn_ingest(
            store, tmp_path / "wal", cwd=tmp_path,
            publish=True, secret="hush",
        )
        followers = []
        router = None
        primary.start()
        try:
            for index in (1, 2):
                follower = spawn_follower(
                    tmp_path / f"replica{index}",
                    tmp_path / f"fwal{index}",
                    primary.url, cwd=tmp_path, secret="hush",
                )
                follower.start()
                followers.append(follower)
            router = spawn_router(
                [f.url for f in followers], cwd=tmp_path
            )
            router.start()
            applied = _post(
                primary.url + "/ingest", {"add": ADD, "wait": True}
            )
            for follower in followers:
                wait_until(
                    lambda f=follower: _get(f.url + "/health")[
                        "applied_seq"
                    ] >= applied["seq"],
                    message="follower catch-up",
                )

            options = LoadOptions(
                duration_seconds=4.0, rate=40.0, seed=13, workers=4
            )
            plan = build_plan(options, [PATTERN], [])  # query-only
            injector = FaultInjector([
                FaultEvent(1.5, "kill_follower", followers[0].sigkill)
            ])
            injector.start()
            try:
                report = LoadRunner(router.url, plan, workers=4).run()
            finally:
                injector.join()
            assert injector.errors == []
            # The router evicts the corpse and fails over; a handful of
            # in-flight queries may land on the dying socket.
            Envelope(
                max_server_error_fraction=0.25,
                max_transport_fraction=0.25,
            ).check(report)
            assert report.counts["ok"] > report.total / 2
            verify_version_monotonic(report)
            _record("follower-kill", report, seed=options.seed)

            followers[0].restart()
            wait_until(
                lambda: all(
                    state["up"]
                    for state in _get(router.url + "/health")["replicas"]
                ),
                interval=0.2,
                message="restarted follower to rejoin the router pool",
            )
        finally:
            if router is not None:
                router.terminate()
            for follower in followers:
                follower.terminate()
            primary.terminate()

    def test_torn_follower_wal_tail_repairs_on_restart(self, tmp_path):
        store = _mined_store(tmp_path)
        primary = spawn_ingest(
            store, tmp_path / "wal", cwd=tmp_path,
            publish=True, secret="hush",
        )
        primary.start()
        follower = None
        try:
            for _ in range(3):
                _post(primary.url + "/ingest", {"add": ADD, "wait": True})
            follower = spawn_follower(
                tmp_path / "replica", tmp_path / "fwal",
                primary.url, cwd=tmp_path, secret="hush",
            )
            follower.start()
            primary_applied = _get(primary.url + "/lag")["applied_seq"]
            wait_until(
                lambda: _get(follower.url + "/health")["applied_seq"]
                >= primary_applied,
                message="follower initial catch-up",
            )
            # Tear the follower's WAL tail while it is down — exactly
            # what a crash mid-append leaves behind.
            follower.sigkill()
            truncate_segment(tmp_path / "fwal")
            follower.restart()
            final = _post(
                primary.url + "/ingest", {"add": ADD, "wait": True}
            )
            wait_until(
                lambda: _get(follower.url + "/health")["applied_seq"]
                >= final["seq"],
                message="follower to repair its WAL and re-sync",
            )
            primary_support = _post(
                primary.url + "/query",
                {"op": "support", "pattern": PATTERN},
            )["value"]
            follower_support = _post(
                follower.url + "/query",
                {"op": "support", "pattern": PATTERN},
            )["value"]
            assert follower_support == primary_support
        finally:
            if follower is not None:
                follower.terminate()
            primary.terminate()


@pytest.mark.slow
class TestRandomizedSweep:
    """Nightly: seed-randomized fault *scenarios*, not just kill times.

    Each run draws 1-2 scenarios from the menu — applier SIGKILL, fsync
    stall, torn-WAL-tail damage, disk-full on the WAL volume — so
    successive nightlies explore scenario combinations; a failure
    prints the seed that replays the exact draw.
    """

    def test_randomized_fault_scenario_sweep(self, tmp_path):
        seed = int(os.environ.get("CHAOS_SEED", "0"))
        if not seed:
            seed = int.from_bytes(os.urandom(4), "little") or 1
        print(f"CHAOS_SEED={seed} (export to reproduce this sweep)")
        store = _mined_store(tmp_path)
        wal_dir = tmp_path / "wal"
        faultpoints = tmp_path / "faultpoints.json"
        stall_fsync(faultpoints, 0)
        process = spawn_ingest(
            store, wal_dir, cwd=tmp_path, max_lag=8,
            env={"REPRO_FAULTPOINTS_FILE": str(faultpoints)},
        )
        process.start()

        def damage_wal_and_restart() -> None:
            # Torn tail on the *primary* WAL: append_torn_frame adds
            # junk after the last fsynced frame, so recovery truncates
            # only the junk and no acked write is at risk.
            process.sigkill()
            append_torn_frame(wal_dir)
            process.restart()

        try:
            options = LoadOptions(
                duration_seconds=6.0, rate=30.0, seed=seed, workers=4
            )
            plan = build_plan(options, [PATTERN], [ADD])
            menu = [
                "kill_applier", "stall_fsync", "wal_damage", "disk_full",
            ]
            events = []
            for at, kind in seeded_scenario_plan(
                seed, options.duration_seconds, menu
            ):
                if kind == "kill_applier":
                    events.append(FaultEvent(
                        at, kind, lambda: kill_and_restart(process)
                    ))
                elif kind == "stall_fsync":
                    events.append(FaultEvent(
                        at, kind, lambda: stall_fsync(faultpoints, 180)
                    ))
                    events.append(FaultEvent(
                        at + 1.0, "clear_stall",
                        lambda: stall_fsync(faultpoints, 0),
                    ))
                elif kind == "disk_full":
                    # The WAL volume "fills" for ~1s: every ingest in
                    # the window must shed as 429 (the envelope's
                    # server_error budget of 0 catches any 500).
                    events.append(FaultEvent(
                        at, kind, lambda: disk_full(faultpoints, True)
                    ))
                    events.append(FaultEvent(
                        at + 1.0, "clear_disk_full",
                        lambda: disk_full(faultpoints, False),
                    ))
                else:
                    events.append(FaultEvent(
                        at, kind, damage_wal_and_restart
                    ))
            injector = FaultInjector(events)
            injector.start()
            try:
                report = LoadRunner(process.url, plan, workers=4).run()
            finally:
                injector.join()
            assert injector.errors == []
            Envelope(max_transport_fraction=0.75).check(report)
            verify_no_lost_acks(process.url, report)
            verify_version_monotonic(report)
            _record(
                "randomized-sweep", report, seed=seed,
                scenarios=[e.name for e in injector.events],
            )
        finally:
            process.terminate()
