"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graphs.io import write_graph_database
from repro.graphs.database import GraphDatabase
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.taxonomy.io import write_taxonomy


@pytest.fixture
def files(tmp_path):
    tax = taxonomy_from_parent_names({"b": "a", "c": "a"})
    db = GraphDatabase(node_labels=tax.interner)
    db.new_graph(["b", "c"], [(0, 1, "x")])
    db.new_graph(["c", "b"], [(0, 1, "x")])
    db.new_graph(["b", "b"], [(0, 1, "x")])
    tax_path = tmp_path / "tax.txt"
    db_path = tmp_path / "db.graphs"
    write_taxonomy(tax, tax_path)
    write_graph_database(db, db_path)
    return db_path, tax_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine", "db", "tax"])
        assert args.algorithm == "taxogram"
        assert args.support == 0.2
        assert args.workers == 1

    @pytest.mark.parametrize("bad", ["0", "0.0", "1.5", "-0.2", "nan", "abc"])
    def test_support_outside_unit_interval_rejected(self, bad, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["mine", "db", "tax", "--support", bad])
        assert exc_info.value.code == 2
        assert "support must be" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["0", "-1", "1.5", "two"])
    def test_workers_below_one_rejected(self, bad, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["mine", "db", "tax", "--workers", bad])
        assert exc_info.value.code == 2
        assert "workers must be" in capsys.readouterr().err

    def test_compare_validates_support_and_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "db", "tax", "--support", "2"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "db", "tax", "--workers", "0"])


class TestMine:
    def test_taxogram(self, files, capsys):
        db_path, tax_path = files
        code = main(["mine", str(db_path), str(tax_path), "--support", "1.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "taxogram:" in out
        assert "sup=1.000" in out

    def test_disk_index_flag(self, files, capsys):
        db_path, tax_path = files
        code = main(
            ["mine", str(db_path), str(tax_path), "--support", "1.0",
             "--disk-index"]
        )
        assert code == 0
        assert "taxogram:" in capsys.readouterr().out

    def test_baseline_and_tacgm(self, files, capsys):
        db_path, tax_path = files
        for algo in ("baseline", "tacgm"):
            code = main(
                [
                    "mine", str(db_path), str(tax_path),
                    "--algorithm", algo, "--support", "1.0",
                ]
            )
            assert code == 0
            assert algo in capsys.readouterr().out

    def test_limit_and_truncation_notice(self, files, capsys):
        db_path, tax_path = files
        main(
            ["mine", str(db_path), str(tax_path), "--support", "0.3",
             "--limit", "1"]
        )
        out = capsys.readouterr().out
        assert "more (use --limit 0" in out

    def test_workers_smoke(self, files, capsys):
        db_path, tax_path = files
        code = main(
            ["mine", str(db_path), str(tax_path), "--support", "1.0",
             "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "taxogram:" in out
        assert "sup=1.000" in out

    def test_workers_match_sequential_output(self, files, capsys):
        db_path, tax_path = files
        assert main(
            ["mine", str(db_path), str(tax_path), "--support", "0.5"]
        ) == 0
        sequential_out = capsys.readouterr().out
        assert main(
            ["mine", str(db_path), str(tax_path), "--support", "0.5",
             "--workers", "2"]
        ) == 0
        parallel_out = capsys.readouterr().out
        # Identical pattern lines; only the timing summary line differs.
        assert sequential_out.splitlines()[1:] == parallel_out.splitlines()[1:]

    def test_workers_rejected_for_tacgm(self, files, capsys):
        db_path, tax_path = files
        code = main(
            ["mine", str(db_path), str(tax_path), "--algorithm", "tacgm",
             "--workers", "2"]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_workers_rejected_for_directed(self, files, capsys):
        db_path, tax_path = files
        code = main(
            ["mine", str(db_path), str(tax_path), "--directed",
             "--workers", "2"]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_tacgm_memory_budget_error_reported(self, files, capsys):
        db_path, tax_path = files
        code = main(
            [
                "mine", str(db_path), str(tax_path),
                "--algorithm", "tacgm", "--support", "0.5",
                "--memory-budget", "1",
            ]
        )
        assert code == 1
        assert "memory budget" in capsys.readouterr().err


class TestStoreOutAndUpdate:
    @pytest.fixture
    def store(self, tmp_path, files, capsys):
        db_path, tax_path = files
        store_dir = tmp_path / "store"
        assert main(
            ["mine", str(db_path), str(tax_path), "--support", "0.5",
             "--store-out", str(store_dir)]
        ) == 0
        assert "pattern store written to" in capsys.readouterr().out
        return store_dir, db_path, tax_path

    def _write_add_file(self, tmp_path, files):
        db_path, tax_path = files
        tax = taxonomy_from_parent_names({"b": "a", "c": "a"})
        add_db = GraphDatabase(node_labels=tax.interner)
        add_db.new_graph(["b", "c"], [(0, 1, "x")])
        add_path = tmp_path / "adds.graphs"
        write_graph_database(add_db, add_path)
        return add_path

    def test_store_out_rejected_for_tacgm(self, tmp_path, files, capsys):
        db_path, tax_path = files
        code = main(
            ["mine", str(db_path), str(tax_path), "--algorithm", "tacgm",
             "--store-out", str(tmp_path / "s")]
        )
        assert code == 2
        assert "--store-out" in capsys.readouterr().err

    def test_store_out_rejected_for_directed(self, tmp_path, files, capsys):
        db_path, tax_path = files
        code = main(
            ["mine", str(db_path), str(tax_path), "--directed",
             "--store-out", str(tmp_path / "s")]
        )
        assert code == 2
        assert "--store-out" in capsys.readouterr().err

    def test_update_add(self, tmp_path, store, files, capsys):
        store_dir, _db_path, _tax_path = store
        add_path = self._write_add_file(tmp_path, files)
        code = main(["update", str(store_dir), "--add", str(add_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "applied delta (+1 graphs, -0 graphs)" in out
        assert "sup=" in out

    def test_update_remove(self, store, capsys):
        store_dir, _db_path, _tax_path = store
        code = main(["update", str(store_dir), "--remove", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "applied delta (+0 graphs, -1 graphs)" in out

    def test_update_nothing_to_do(self, store, capsys):
        store_dir, _db_path, _tax_path = store
        code = main(["update", str(store_dir)])
        assert code == 2
        assert "nothing to update" in capsys.readouterr().err

    def test_update_support_fingerprint_mismatch(self, store, capsys):
        store_dir, _db_path, _tax_path = store
        code = main(
            ["update", str(store_dir), "--remove", "0", "--support", "0.9"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "store fingerprint mismatch" in err
        assert "min_support" in err

    def test_update_taxonomy_fingerprint_mismatch(self, tmp_path, store,
                                                  capsys):
        store_dir, _db_path, _tax_path = store
        other = taxonomy_from_parent_names({"q": "p"})
        other_path = tmp_path / "other.tax"
        write_taxonomy(other, other_path)
        code = main(
            ["update", str(store_dir), "--remove", "0",
             "--taxonomy", str(other_path)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "store fingerprint mismatch" in err
        assert "taxonomy" in err

    def test_update_matching_fingerprint_accepted(self, store, capsys):
        store_dir, _db_path, tax_path = store
        code = main(
            ["update", str(store_dir), "--remove", "0",
             "--support", "0.5", "--taxonomy", str(tax_path)]
        )
        assert code == 0
        assert "applied delta" in capsys.readouterr().out

    def test_update_bad_remove_ids_rejected(self, store, capsys):
        store_dir, _db_path, _tax_path = store
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(
                ["update", str(store_dir), "--remove", "0,x"]
            )
        assert exc_info.value.code == 2
        capsys.readouterr()

    def test_update_on_non_store_fails(self, tmp_path, capsys):
        bogus = tmp_path / "not-a-store"
        bogus.mkdir()
        code = main(["update", str(bogus), "--remove", "0"])
        assert code == 1
        assert "not a pattern store" in capsys.readouterr().err


class TestGenerateAndStats:
    def test_generate_writes_files(self, tmp_path, capsys):
        graphs_out = tmp_path / "g.graphs"
        tax_out = tmp_path / "t.tax"
        code = main(
            [
                "generate", "TS25",
                "--graphs-out", str(graphs_out),
                "--taxonomy-out", str(tax_out),
                "--graph-scale", "0.003",
                "--taxonomy-scale", "1.0",
            ]
        )
        assert code == 0
        assert graphs_out.exists()
        assert tax_out.exists()
        out = capsys.readouterr().out
        assert "wrote" in out

        code = main(["stats", str(graphs_out)])
        assert code == 0
        assert "DB Id" in capsys.readouterr().out

    def test_generate_unknown_dataset(self, tmp_path, capsys):
        code = main(
            [
                "generate", "BOGUS",
                "--graphs-out", str(tmp_path / "g"),
                "--taxonomy-out", str(tmp_path / "t"),
            ]
        )
        assert code == 1
        assert "unknown dataset" in capsys.readouterr().err

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "D1000" in out
        assert "PTE" in out
