"""Tests for the ``taxogram compare`` subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graphs.database import GraphDatabase
from repro.graphs.io import write_graph_database
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.taxonomy.io import write_taxonomy


@pytest.fixture
def files(tmp_path):
    tax = taxonomy_from_parent_names({"b": "a", "c": "a"})
    db = GraphDatabase(node_labels=tax.interner)
    db.new_graph(["b", "c"], [(0, 1, "x")])
    db.new_graph(["c", "b"], [(0, 1, "x")])
    db.new_graph(["b", "b", "c"], [(0, 1, "x"), (1, 2, "x")])
    tax_path = tmp_path / "tax.txt"
    db_path = tmp_path / "db.graphs"
    write_taxonomy(tax, tax_path)
    write_graph_database(db, db_path)
    return db_path, tax_path


class TestCompare:
    def test_all_algorithms_reported_and_agree(self, files, capsys):
        db_path, tax_path = files
        code = main(
            ["compare", str(db_path), str(tax_path), "--support", "0.67",
             "--max-edges", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "taxogram" in out
        assert "baseline" in out
        assert "tacgm" in out
        assert "pattern sets agree: True" in out

    def test_tacgm_oom_reported_without_failing(self, files, capsys):
        db_path, tax_path = files
        code = main(
            ["compare", str(db_path), str(tax_path), "--support", "0.34",
             "--memory-budget", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0  # taxogram/baseline still agree
        assert "OOM" in out
        assert "pattern sets agree: True" in out

    def test_workers_adds_parallel_run(self, files, capsys):
        db_path, tax_path = files
        code = main(
            ["compare", str(db_path), str(tax_path), "--support", "0.67",
             "--max-edges", "2", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "parallel" in out
        assert "pattern sets agree: True" in out

    def test_unlimited_budget_flag(self, files, capsys):
        db_path, tax_path = files
        code = main(
            ["compare", str(db_path), str(tax_path), "--support", "0.67",
             "--max-edges", "1", "--memory-budget", "0"]
        )
        assert code == 0
        assert "OOM" not in capsys.readouterr().out
