"""CLI tests for ``taxogram ingest --publish`` / ``replicate`` /
``route``.

End-to-end over real subprocesses where the pipeline shape matters
(primary → follower → router, the TUTORIAL step 15 topology), in-process
``main()`` where only argument handling is under test.  ``info`` on a
replica is golden-checked.
"""

from __future__ import annotations

import json
import os
import signal
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.incremental import DatabaseDelta
from repro.streaming import WriteAheadLog
from tests.conftest import wait_until
from tests.test_cli_streaming import (
    _PORT,
    _check_golden,
    _spawn_cli,
    workdir,  # noqa: F401 - fixture re-export
)

ADD_ONE = "t # 0\nv 0 b\nv 1 c\ne 0 1 x\n"


def _port_from_banner(banner: str) -> int:
    match = _PORT.search(banner)
    assert match, f"no address in banner: {banner!r}"
    return int(banner.rsplit(":", 1)[1].split()[0].rstrip("/"))


def _get(port: int, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return json.loads(response.read())


def _post(port: int, path: str, doc: dict):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        json.dumps(doc).encode("utf-8"),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class TestArgumentValidation:
    def test_publish_requires_serve(self, workdir, capsys):
        assert main(
            ["ingest", "store", "--wal", "wal", "--publish"]
        ) == 2
        assert "--publish requires --serve" in capsys.readouterr().err

    def test_secret_requires_publish(self, workdir, capsys):
        assert main(
            ["ingest", "store", "--wal", "wal", "--secret", "k"]
        ) == 2
        assert "--secret requires --publish" in capsys.readouterr().err

    def test_replicate_unreachable_primary_errors(self, workdir, capsys):
        assert main(
            ["replicate", "replica", "--from", "http://127.0.0.1:9",
             "--wal", "rwal", "--timeout", "1"]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestPipeline:
    def test_publish_replicate_route_end_to_end(self, workdir):
        """The full TUTORIAL step 15 topology as real processes:
        a publishing primary, a one-shot catch-up, a serving follower,
        and a router fanning out over it."""
        primary = _spawn_cli(
            ["ingest", "store", "--wal", "wal", "--serve", "--publish",
             "--secret", "hush", "--port", "0", "--batch-latency", "0.02"],
            workdir,
        )
        follower = router = None
        try:
            pport = _port_from_banner(primary.stdout.readline())
            for _ in range(3):
                _post(pport, "/ingest", {"add": ADD_ONE, "wait": True})
            health = _get(pport, "/health")
            assert health["role"] == "primary"
            assert health["applied_seq"] == 2

            # One-shot catch-up, then verify the replica offline.
            code = main(
                ["replicate", "replica", "--from",
                 f"http://127.0.0.1:{pport}", "--wal", "rwal",
                 "--secret", "hush", "--timeout", "60"]
            )
            assert code == 0

            # Serving follower over the already-caught-up replica.
            follower = _spawn_cli(
                ["replicate", "replica", "--from",
                 f"http://127.0.0.1:{pport}", "--wal", "rwal",
                 "--serve", "--secret", "hush", "--port", "0",
                 "--poll-interval", "0.05"],
                workdir,
            )
            fport = _port_from_banner(follower.stdout.readline())
            health = _get(fport, "/health")
            assert health["role"] == "follower"
            assert health["applied_seq"] == 2

            # Router over the follower.
            router = _spawn_cli(
                ["route", "--replica", f"http://127.0.0.1:{fport}",
                 "--port", "0"],
                workdir,
            )
            rport = _port_from_banner(router.stdout.readline())
            routed = _post(
                rport, "/query", {"op": "support", "pattern": ADD_ONE}
            )
            direct = _post(
                pport, "/query", {"op": "support", "pattern": ADD_ONE}
            )
            assert routed["value"] == direct["value"]
            health = _get(rport, "/health")
            assert health["role"] == "router"
            assert health["replicas"][0]["up"] is True

            # A write that propagates: ingest, then read-your-writes
            # through the router with min_applied_seq.
            ack = _post(pport, "/ingest", {"add": ADD_ONE})

            def _routed_fresh():
                try:
                    return _post(
                        rport,
                        "/query",
                        {
                            "op": "support",
                            "pattern": ADD_ONE,
                            "min_applied_seq": ack["seq"],
                        },
                    )
                except urllib.error.HTTPError as exc:
                    assert exc.code == 429
                    return None

            routed = wait_until(
                _routed_fresh, interval=0.05,
                message="follower to reach the acked seq",
            )
            assert routed["value"] == direct["value"] + 1
        finally:
            for proc in (router, follower, primary):
                if proc is None:
                    continue
                proc.send_signal(signal.SIGTERM)
            outs = {}
            for name, proc in (
                ("router", router), ("follower", follower),
                ("primary", primary),
            ):
                if proc is None:
                    continue
                try:
                    out, err = proc.communicate(timeout=30)
                    outs[name] = (proc.returncode, out, err)
                finally:
                    proc.kill()
        for name, (code, out, err) in outs.items():
            assert code == 0, f"{name}: {err}"
            assert "received shutdown signal" in out, f"{name}: {out}"
        # The follower's parting line reports the offset it actually
        # applied: the routed read-your-writes above proved seq 3 landed.
        assert "applied seq 3" in outs["follower"][1]

    def test_info_reports_replica_role_golden(self, workdir, capsys):
        primary = _spawn_cli(
            ["ingest", "store", "--wal", "wal", "--serve", "--publish",
             "--port", "0", "--batch-latency", "0.02"],
            workdir,
        )
        try:
            pport = _port_from_banner(primary.stdout.readline())
            _post(pport, "/ingest", {"add": ADD_ONE, "wait": True})
            assert main(
                ["replicate", "replica", "--from",
                 f"http://127.0.0.1:{pport}", "--wal", "rwal",
                 "--timeout", "60"]
            ) == 0
            capsys.readouterr()
            assert main(["info", "replica"]) == 0
            out = capsys.readouterr().out
            out = _PORT.sub("http://<primary>", out)
        finally:
            primary.send_signal(signal.SIGTERM)
            try:
                primary.communicate(timeout=30)
            finally:
                primary.kill()
        _check_golden("info_replica.txt", out)

    def test_route_sharded_refuses_top_k(self, workdir):
        # Two "shards" (the same store twice is fine for the refusal
        # path, which never reaches the shards).
        server = _spawn_cli(["serve", "store", "--port", "0"], workdir)
        router = None
        try:
            sport = _port_from_banner(server.stdout.readline())
            router = _spawn_cli(
                ["route", "--replica", f"http://127.0.0.1:{sport}",
                 "--sharded", "--port", "0", "--max-requests", "1"],
                workdir,
            )
            rport = _port_from_banner(router.stdout.readline())
            try:
                _get(rport, "/top?k=3")
                pytest.fail("sharded top_k was not refused")
            except urllib.error.HTTPError as exc:
                assert exc.code == 400
                assert "shard" in json.loads(exc.read())["error"]
            out, err = router.communicate(timeout=30)
            assert router.returncode == 0, err
            assert "handled 1 requests" in out
        finally:
            if router is not None:
                router.kill()
            server.send_signal(signal.SIGTERM)
            try:
                server.communicate(timeout=30)
            finally:
                server.kill()
