"""Golden-file tests for ``taxogram query`` and ``taxogram serve``.

Same conventions as :mod:`tests.test_cli_trace`: goldens live in
``tests/golden/`` and are regenerated with ``REGEN_GOLDENS=1``.  Query
answers are deterministic for a fixed store; the volatile parts are
serving latencies (normalized by counter/gauge name) and the ephemeral
server port (normalized in the stdout banner).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.graphs.database import GraphDatabase
from repro.graphs.io import write_graph_database
from repro.observability import RunReport
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.taxonomy.io import write_taxonomy

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REGEN_GOLDENS"))

_VOLATILE_TOKEN = re.compile(r"\d+(?:\.\d+)?(ms|KB)")
# Serving latency metrics are volatile but their names carry no ms/KB
# suffix in the rendered table; normalize their values by name.
_LATENCY_METRIC = re.compile(r"(serving\.latency\S*\s+)[0-9][0-9.]*")
_PORT = re.compile(r"http://([^:]+):\d+")


def _normalize_text(text: str) -> str:
    text = _VOLATILE_TOKEN.sub(lambda m: f"<{m.group(1)}>", text)
    return _LATENCY_METRIC.sub(r"\1<n>", text)


def _check_golden(name: str, actual: str) -> None:
    path = GOLDEN_DIR / name
    if REGEN:
        path.parent.mkdir(exist_ok=True)
        path.write_text(actual)
        pytest.skip(f"regenerated {name}")
    assert path.exists(), (
        f"missing golden {name}; run with REGEN_GOLDENS=1 to create it"
    )
    assert actual == path.read_text()


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("cli_serving")
    tax = taxonomy_from_parent_names(
        {
            "A": [],
            "B": [],
            "C": [],
            "a1": "A",
            "a2": "A",
            "b1": "B",
            "b2": "B",
            "c1": "C",
        }
    )
    db = GraphDatabase(node_labels=tax.interner)
    db.new_graph(["a1", "b1", "c1"], [(0, 1), (1, 2), (0, 2)])
    db.new_graph(["a1", "b1"], [(0, 1)])
    db.new_graph(["a1", "b2"], [(0, 1)])
    db.new_graph(["a1", "c1"], [(0, 1)])
    tax_path = tmp_path / "tax.txt"
    db_path = tmp_path / "db.graphs"
    write_taxonomy(tax, tax_path)
    write_graph_database(db, db_path)
    store_dir = tmp_path / "store"
    assert main(
        ["mine", str(db_path), str(tax_path), "--support", "0.5",
         "--max-edges", "2", "--store-out", str(store_dir)]
    ) == 0
    return store_dir


@pytest.fixture
def pattern_file(tmp_path):
    path = tmp_path / "pattern.graphs"
    path.write_text("t # 0\nv 0 A\nv 1 B\ne 0 1 -\n")
    return path


class TestQueryCommand:
    def test_support_golden(self, store, pattern_file, capsys):
        code = main(["query", str(store), "--pattern", str(pattern_file)])
        assert code == 0
        _check_golden("query_support.txt", capsys.readouterr().out)

    def test_specializations_golden(self, store, pattern_file, capsys):
        code = main(
            ["query", str(store), "--pattern", str(pattern_file),
             "--op", "specializations"]
        )
        assert code == 0
        _check_golden("query_specializations.txt", capsys.readouterr().out)

    def test_top_k_golden(self, store, capsys):
        code = main(["query", str(store), "--top-k", "5"])
        assert code == 0
        _check_golden("query_topk.txt", capsys.readouterr().out)

    def test_graphs_trace_golden(self, store, pattern_file, capsys):
        code = main(
            ["query", str(store), "--pattern", str(pattern_file),
             "--op", "graphs", "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "via bitset" in out
        section = out[out.index("== run report:"):]
        _check_golden("query_trace.txt", _normalize_text(section))

    def test_metrics_out_parses_and_counts(self, store, pattern_file,
                                           tmp_path, capsys):
        out_path = tmp_path / "query.json"
        code = main(
            ["query", str(store), "--pattern", str(pattern_file),
             "--metrics-out", str(out_path)]
        )
        assert code == 0
        capsys.readouterr()
        report = RunReport.from_json(out_path.read_text())
        assert report.algorithm == "serving"
        assert report.counter("serving.queries") == 1
        assert report.counter("serving.vf2_tests") == 0

    def test_requires_exactly_one_mode(self, store, pattern_file, capsys):
        assert main(["query", str(store)]) == 2
        assert main(
            ["query", str(store), "--pattern", str(pattern_file),
             "--top-k", "3"]
        ) == 2
        err = capsys.readouterr().err
        assert "exactly one of --pattern or --top-k" in err


class TestSimilarCommand:
    def test_ranked_golden(self, store, pattern_file, capsys):
        code = main(
            ["similar", str(store), "--pattern", str(pattern_file),
             "--threshold", "0.2"]
        )
        assert code == 0
        _check_golden("similar_ranked.txt", capsys.readouterr().out)

    def test_score_golden(self, store, pattern_file, capsys):
        code = main(
            ["similar", str(store), "--pattern", str(pattern_file),
             "--op", "similarity_score", "--graph-id", "3"]
        )
        assert code == 0
        _check_golden("similar_score.txt", capsys.readouterr().out)

    def test_fuzzy_contains_golden(self, store, pattern_file, capsys):
        code = main(
            ["similar", str(store), "--pattern", str(pattern_file),
             "--op", "fuzzy_contains", "--threshold", "0.5",
             "--semantics", "homomorphism"]
        )
        assert code == 0
        _check_golden("similar_fuzzy.txt", capsys.readouterr().out)

    def test_trace_golden(self, store, pattern_file, capsys):
        code = main(
            ["similar", str(store), "--pattern", str(pattern_file),
             "--threshold", "0.2", "--k", "2", "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        section = out[out.index("== run report:"):]
        _check_golden("similar_trace.txt", _normalize_text(section))

    def test_bad_threshold_is_an_error(self, store, pattern_file, capsys):
        code = main(
            ["similar", str(store), "--pattern", str(pattern_file),
             "--threshold", "2.0"]
        )
        assert code == 1
        assert "threshold must be in (0, 1]" in capsys.readouterr().err


class TestServeCommand:
    def test_one_request_roundtrip(self, store):
        """Boot the real server on an ephemeral port, make one HTTP
        request, and let ``--max-requests`` wind it down."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src"
        ) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "serve", str(store),
             "--port", "0", "--max-requests", "1"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            match = _PORT.search(banner)
            assert match, f"no address in banner: {banner!r}"
            port = int(banner.rsplit(":", 1)[1].split()[0].rstrip("/"))
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/health", timeout=10
            ) as response:
                payload = json.loads(response.read())
            out, err = process.communicate(timeout=30)
        finally:
            process.kill()
        assert process.returncode == 0, err
        assert payload == {
            "status": "ok",
            "role": "standalone",
            "store_version": 1,
            "classes": payload["classes"],
            "database_size": 4,
            "min_support": 0.5,
            "applied_seq": None,
        }
        assert payload["classes"] >= 2
        normalized = _PORT.sub(r"http://\1:<port>", banner + out)
        normalized = normalized.replace(str(store), "<store>")
        _check_golden("serve_stdout.txt", normalized)
