"""CLI tests for ``taxogram ingest`` / ``taxogram info`` and graceful
shutdown of the long-running servers.

``info`` output is golden-checked (``REGEN_GOLDENS=1`` regenerates);
the fixture chdirs into the tmp dir and uses relative paths so the
golden is stable across runs.  The SIGTERM tests boot the real CLI in a
subprocess, deliver the signal, and assert a clean exit 0 with the
flush/exit message — the behaviour an orchestrator (systemd, k8s)
depends on.
"""

from __future__ import annotations

import json
import os
import re
import signal
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.graphs.database import GraphDatabase
from repro.graphs.io import write_graph_database
from repro.incremental import DatabaseDelta
from repro.streaming import WriteAheadLog
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.taxonomy.io import write_taxonomy
from tests.conftest import spawn_cli, wait_until

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REGEN_GOLDENS"))
_PORT = re.compile(r"http://([^:]+):\d+")


def _check_golden(name: str, actual: str) -> None:
    path = GOLDEN_DIR / name
    if REGEN:
        path.parent.mkdir(exist_ok=True)
        path.write_text(actual)
        pytest.skip(f"regenerated {name}")
    assert path.exists(), (
        f"missing golden {name}; run with REGEN_GOLDENS=1 to create it"
    )
    assert actual == path.read_text()


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    """A mined store at ``store/`` relative to the cwd."""
    monkeypatch.chdir(tmp_path)
    taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a"})
    db = GraphDatabase(node_labels=taxonomy.interner)
    for name in ["x", "x", "y"]:
        db.new_graph(["b", "c"], [(0, 1, name)])
    write_taxonomy(taxonomy, "tax.txt")
    write_graph_database(db, "db.graphs")
    assert main(
        ["mine", "db.graphs", "tax.txt", "--support", "0.4",
         "--store-out", "store"]
    ) == 0
    return tmp_path


def _journal(wal_dir, deltas):
    with WriteAheadLog(wal_dir) as wal:
        for delta in deltas:
            wal.append(delta)


class TestInfoCommand:
    def test_info_golden(self, workdir, capsys):
        assert main(["info", "store"]) == 0
        _check_golden("info_store.txt", capsys.readouterr().out)

    def test_info_with_wal_golden(self, workdir, capsys):
        _journal("wal", [
            DatabaseDelta(add_text="t # 0\nv 0 b\nv 1 c\ne 0 1 x\n"),
            DatabaseDelta(remove_ids=(0,)),
        ])
        assert main(["ingest", "store", "--wal", "wal"]) == 0
        capsys.readouterr()
        assert main(["info", "store", "--wal", "wal"]) == 0
        _check_golden("info_store_wal.txt", capsys.readouterr().out)

    def test_info_missing_wal_dir(self, workdir, capsys):
        assert main(["info", "store", "--wal", "nowhere"]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_info_compressed_golden(self, workdir, capsys):
        # zlib is deterministic at a fixed level, so codec, ratio and
        # per-file sizes are stable enough to golden-check.
        assert main(
            ["mine", "db.graphs", "tax.txt", "--support", "0.4",
             "--store-out", "zstore", "--compress", "zlib"]
        ) == 0
        capsys.readouterr()
        assert main(["info", "zstore"]) == 0
        out = capsys.readouterr().out
        assert "compression: zlib" in out
        _check_golden("info_store_compressed.txt", out)

    def test_info_raw_store_reports_no_compression(self, workdir, capsys):
        assert main(["info", "store"]) == 0
        assert "compression" not in capsys.readouterr().out


class TestIngestDrain:
    def test_drain_applies_and_reports(self, workdir, capsys):
        _journal("wal", [
            DatabaseDelta(add_text="t # 0\nv 0 b\nv 1 c\ne 0 1 x\n"),
            DatabaseDelta(add_text="t # 0\nv 0 ghost\n"),
            DatabaseDelta(remove_ids=(1,)),
        ])
        assert main(["ingest", "store", "--wal", "wal"]) == 0
        out = capsys.readouterr().out
        assert "applied 3 journaled records to store" in out
        assert "(applied seq 2, lag 0)" in out
        assert "rejected record 1:" in out
        assert "ghost" in out

    def test_drain_is_idempotent(self, workdir, capsys):
        _journal("wal", [
            DatabaseDelta(add_text="t # 0\nv 0 b\nv 1 c\ne 0 1 y\n"),
        ])
        assert main(["ingest", "store", "--wal", "wal"]) == 0
        capsys.readouterr()
        assert main(["ingest", "store", "--wal", "wal"]) == 0
        out = capsys.readouterr().out
        assert "applied 0 journaled records" in out


# Shared with the other subprocess suites (replication, chaos).
_spawn_cli = spawn_cli


class TestGracefulShutdown:
    def test_serve_exits_zero_on_sigterm(self, workdir):
        process = _spawn_cli(["serve", "store", "--port", "0"], workdir)
        try:
            banner = process.stdout.readline()
            assert _PORT.search(banner), banner
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
        finally:
            process.kill()
        assert process.returncode == 0, err
        assert "received shutdown signal, exiting" in out

    def test_ingest_serve_flushes_on_sigterm(self, workdir):
        process = _spawn_cli(
            ["ingest", "store", "--wal", "wal", "--serve", "--port", "0",
             "--batch-latency", "0.02"],
            workdir,
        )
        try:
            banner = process.stdout.readline()
            match = _PORT.search(banner)
            assert match, banner
            port = int(banner.rsplit(":", 1)[1].split()[0].rstrip("/"))
            body = json.dumps(
                {"add": "t # 0\nv 0 b\nv 1 c\ne 0 1 x\n"}
            ).encode("utf-8")
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/ingest",
                body,
                {"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 202

            def _applied() -> bool:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/lag", timeout=10
                ) as lag_response:
                    return json.loads(lag_response.read())[
                        "applied_seq"
                    ] >= 0

            wait_until(_applied, message="acked record applied")
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
        finally:
            process.kill()
        assert process.returncode == 0, err
        assert "received shutdown signal, flushing applier" in out
        # The acknowledged record was applied before exit.
        assert "applied seq 0, lag 0" in out
