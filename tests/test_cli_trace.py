"""Golden-file tests for the CLI observability surface.

``--trace`` renders and ``--metrics-out`` serializes run reports whose
shape must stay stable: counters and span structure are deterministic
for a fixed dataset, while durations and RSS are volatile.  The render
contract (every duration suffixed ``ms``, every RSS figure suffixed
``KB``) and the JSON schema (volatile values live under known keys) let
these tests normalize the volatile parts away and pin everything else
against goldens in ``tests/golden/``.

Regenerate the goldens after an intentional format change with::

    REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_cli_trace.py
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.graphs.database import GraphDatabase
from repro.graphs.io import write_graph_database
from repro.observability import RunReport
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.taxonomy.io import write_taxonomy

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REGEN_GOLDENS"))

# Volatile tokens in rendered reports: durations and RSS figures.  The
# renderer guarantees the suffixes (see RunReport.render).
_VOLATILE_TOKEN = re.compile(r"\d+(?:\.\d+)?(ms|KB)")
# Volatile values in serialized reports live under these keys.
_VOLATILE_KEYS = {"wall_seconds", "cpu_seconds", "peak_rss_kb"}


def _normalize_text(text: str) -> str:
    return _VOLATILE_TOKEN.sub(lambda m: f"<{m.group(1)}>", text)


def _report_section(out: str) -> str:
    """Everything from the first rendered report onward (the preceding
    pattern listing / comparison table carries volatile wall times)."""
    return out[out.index("== run report:"):]


def _normalize_json(value):
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if key in _VOLATILE_KEYS:
                out[key] = 0
            elif key == "stage_seconds":
                out[key] = {name: 0.0 for name in item}
            else:
                out[key] = _normalize_json(item)
        return out
    if isinstance(value, list):
        return [_normalize_json(item) for item in value]
    return value


def _check_golden(name: str, actual: str) -> None:
    path = GOLDEN_DIR / name
    if REGEN:
        path.parent.mkdir(exist_ok=True)
        path.write_text(actual)
        pytest.skip(f"regenerated {name}")
    assert path.exists(), (
        f"missing golden {name}; run with REGEN_GOLDENS=1 to create it"
    )
    assert actual == path.read_text()


@pytest.fixture
def files(tmp_path):
    tax = taxonomy_from_parent_names({"b": "a", "c": "a"})
    db = GraphDatabase(node_labels=tax.interner)
    db.new_graph(["b", "c"], [(0, 1, "x")])
    db.new_graph(["c", "b"], [(0, 1, "x")])
    db.new_graph(["b", "b"], [(0, 1, "x")])
    tax_path = tmp_path / "tax.txt"
    db_path = tmp_path / "db.graphs"
    write_taxonomy(tax, tax_path)
    write_graph_database(db, db_path)
    return db_path, tax_path


class TestMineTrace:
    def test_trace_golden(self, files, capsys):
        db_path, tax_path = files
        code = main(
            ["mine", str(db_path), str(tax_path), "--support", "1.0",
             "--trace"]
        )
        assert code == 0
        section = _report_section(capsys.readouterr().out)
        _check_golden("mine_trace.txt", _normalize_text(section))

    def test_metrics_out_golden(self, files, tmp_path, capsys):
        db_path, tax_path = files
        out_path = tmp_path / "metrics.json"
        code = main(
            ["mine", str(db_path), str(tax_path), "--support", "1.0",
             "--metrics-out", str(out_path)]
        )
        assert code == 0
        # --metrics-out alone stays quiet on stdout.
        assert "== run report:" not in capsys.readouterr().out
        raw = out_path.read_text()
        report = RunReport.from_json(raw)  # parses back into a report
        assert report.algorithm == "taxogram"
        assert report.counter("mine.pattern_classes") > 0
        normalized = (
            json.dumps(
                _normalize_json(json.loads(raw)), indent=2, sort_keys=True
            )
            + "\n"
        )
        _check_golden("mine_metrics.json", normalized)

    def test_metrics_out_deterministic_across_runs(self, files, tmp_path,
                                                   capsys):
        db_path, tax_path = files
        dumps = []
        for name in ("a.json", "b.json"):
            out_path = tmp_path / name
            assert main(
                ["mine", str(db_path), str(tax_path), "--support", "1.0",
                 "--metrics-out", str(out_path)]
            ) == 0
            dumps.append(_normalize_json(json.loads(out_path.read_text())))
        capsys.readouterr()
        assert dumps[0] == dumps[1]

    def test_workers_trace_shows_shard_spans(self, files, capsys):
        # Parallel shard timings vary run to run; assert the structure
        # rather than pinning a golden.
        db_path, tax_path = files
        code = main(
            ["mine", str(db_path), str(tax_path), "--support", "1.0",
             "--workers", "2", "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "parallel.shard[0]" in out
        assert "parallel.shard[1]" in out
        assert re.search(r"parallel\.shards\s+2", out)


class TestUpdateTrace:
    @pytest.fixture
    def store(self, tmp_path, files, capsys):
        db_path, tax_path = files
        store_dir = tmp_path / "store"
        assert main(
            ["mine", str(db_path), str(tax_path), "--support", "0.5",
             "--store-out", str(store_dir)]
        ) == 0
        capsys.readouterr()
        return store_dir

    def test_trace_golden(self, store, capsys):
        code = main(["update", str(store), "--remove", "0", "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "applied delta (+0 graphs, -1 graphs)" in out
        section = _report_section(out)
        assert "incremental.maintain" in section
        _check_golden("update_trace.txt", _normalize_text(section))

    def test_metrics_out_parses_and_counts(self, store, tmp_path, capsys):
        out_path = tmp_path / "update.json"
        code = main(
            ["update", str(store), "--remove", "0",
             "--metrics-out", str(out_path)]
        )
        assert code == 0
        capsys.readouterr()
        report = RunReport.from_json(out_path.read_text())
        assert report.algorithm == "taxogram"
        assert report.counter("incremental.fallbacks") == 0
        assert report.gauges["incremental.database_size"] == 2


class TestCompareTrace:
    def test_trace_golden(self, files, capsys):
        db_path, tax_path = files
        code = main(
            ["compare", str(db_path), str(tax_path), "--support", "1.0",
             "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pattern sets agree: True" in out
        section = _report_section(out)
        assert "counter deltas (taxogram vs baseline):" in section
        _check_golden("compare_trace.txt", _normalize_text(section))

    def test_metrics_out_golden(self, files, tmp_path, capsys):
        db_path, tax_path = files
        out_path = tmp_path / "compare.json"
        code = main(
            ["compare", str(db_path), str(tax_path), "--support", "1.0",
             "--metrics-out", str(out_path)]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert sorted(payload["runs"]) == ["baseline", "tacgm", "taxogram"]
        for run in payload["runs"].values():
            RunReport.from_dict(run)  # every run parses back
        normalized = (
            json.dumps(_normalize_json(payload), indent=2, sort_keys=True)
            + "\n"
        )
        _check_golden("compare_metrics.json", normalized)


class TestSessionTrace:
    @pytest.fixture
    def session_inputs(self, tmp_path, files, capsys):
        db_path, tax_path = files
        store_dir = tmp_path / "store"
        assert main(
            ["mine", str(db_path), str(tax_path), "--support", "0.5",
             "--store-out", str(store_dir)]
        ) == 0
        capsys.readouterr()
        examples = tmp_path / "examples.graphs"
        examples.write_text("t # 0\nv 0 b\nv 1 c\ne 0 1 x\n")
        return store_dir, examples

    def test_trace_golden(self, session_inputs, capsys):
        store_dir, examples = session_inputs
        code = main(
            ["session", str(store_dir), "--examples", str(examples),
             "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The CLI pins its manager to the "cli" instance tag, so the
        # whole transcript — session id included — is deterministic.
        assert "sess-cli-000001" in out
        assert "sessions.mine" in _report_section(out)
        _check_golden("session_trace.txt", _normalize_text(out))

    def test_metrics_out_parses_and_counts(
        self, session_inputs, tmp_path, capsys
    ):
        store_dir, examples = session_inputs
        out_path = tmp_path / "session.json"
        code = main(
            ["session", str(store_dir), "--examples", str(examples),
             "--metrics-out", str(out_path)]
        )
        assert code == 0
        capsys.readouterr()
        report = RunReport.from_json(out_path.read_text())
        assert report.algorithm == "sessions"
        assert report.counter("sessions.created") == 1
        assert report.counter("sessions.mines") == 1
        assert report.counter("sessions.deleted") == 1

    def test_semantics_and_sigma_flags(self, session_inputs, capsys):
        store_dir, examples = session_inputs
        code = main(
            ["session", str(store_dir), "--examples", str(examples),
             "--semantics", "homomorphism", "--min-support", "1.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "semantics homomorphism" in out
        assert "sigma 1.0" in out

    def test_unknown_label_fails_cleanly(
        self, session_inputs, tmp_path, capsys
    ):
        store_dir, _ = session_inputs
        bad = tmp_path / "bad.graphs"
        bad.write_text("t # 0\nv 0 mystery\nv 1 c\ne 0 1 x\n")
        code = main(["session", str(store_dir), "--examples", str(bad)])
        assert code == 1
        assert "mystery" in capsys.readouterr().err
