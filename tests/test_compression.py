"""Compression layer tests: codecs, store round-trips, WAL parity.

Three claims, each load-bearing for the PR 9 compression work:

1. the self-describing container format round-trips under every
   available codec and fails loudly (``CompressionError``) for unknown
   or unavailable codecs — ``zstd`` stays optional;
2. a compressed :class:`~repro.incremental.store.PatternStore` holds
   exactly the same logical content as a raw one, and legacy raw stores
   open unchanged (their manifests carry no ``compression`` block);
3. a WAL that compresses sealed segments exposes byte-identical
   *logical* segment views, chunks and shipper digests as a raw WAL
   over the same records — the mixed-fleet replication contract — and
   survives the crash window where the tail segment was compressed but
   no new active segment was created yet.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.exceptions import CompressionError, StoreError
from repro.incremental.delta import DatabaseDelta
from repro.incremental.store import PatternStore
from repro.replication.shipper import SegmentShipper
from repro.streaming.wal import WriteAheadLog, decode_frames
from repro.util.compression import (
    available_codecs,
    best_codec,
    container_raw_length,
    decode_container,
    encode_container,
    get_codec,
    is_container,
    normalize_codec,
)
from repro.util.interner import LabelInterner

from tests.conftest import make_random_database, make_random_taxonomy


def _zstd_missing() -> bool:
    try:
        import zstandard  # noqa: F401
    except ImportError:
        return True
    return False


class TestContainerFormat:
    @pytest.mark.parametrize("codec", available_codecs())
    def test_roundtrip(self, codec):
        for payload in (b"", b"x", b"abc" * 5000, bytes(range(256)) * 64):
            blob = encode_container(payload, codec)
            assert is_container(blob)
            assert container_raw_length(blob) == len(payload)
            raw, name = decode_container(blob)
            assert raw == payload
            assert name == codec

    def test_raw_bytes_are_not_containers(self):
        assert not is_container(b"")
        assert not is_container(b"RPZ")
        assert not is_container(b"\x00\x01\x02\x03" * 10)

    def test_unknown_codec_rejected(self):
        with pytest.raises(CompressionError):
            get_codec("lz77")
        with pytest.raises(CompressionError):
            normalize_codec("lz77")

    def test_normalize(self):
        assert normalize_codec(None) is None
        assert normalize_codec("none") is None
        assert normalize_codec("auto") == best_codec()
        assert normalize_codec("zlib") == "zlib"

    @pytest.mark.skipif(
        not _zstd_missing(), reason="zstandard is installed"
    )
    def test_zstd_absent_is_a_clear_error(self):
        with pytest.raises(CompressionError, match="zstandard"):
            get_codec("zstd")
        assert "zlib" in available_codecs()
        assert best_codec() == "zlib"

    def test_corrupt_container_rejected(self):
        blob = encode_container(b"hello world" * 100, "zlib")
        with pytest.raises(CompressionError):
            decode_container(blob[:10])
        # Wrong declared length: flip the raw-length field.
        broken = bytearray(blob)
        broken[9] ^= 0x01
        with pytest.raises(CompressionError):
            decode_container(bytes(broken))


def _mine_store(tmp_path, name: str, compression: str | None):
    from repro.core.taxogram import Taxogram, TaxogramOptions

    rng = random.Random(7)
    interner = LabelInterner()
    taxonomy = make_random_taxonomy(rng, interner, 6, dag=True)
    database = make_random_database(rng, taxonomy, 5)
    options = TaxogramOptions(
        min_support=0.5,
        max_edges=2,
        store_out=str(tmp_path / name),
        store_compression=compression,
    )
    result = Taxogram(options).mine(database, taxonomy)
    return result, tmp_path / name


class TestStoreCompression:
    def test_compressed_store_matches_raw(self, tmp_path):
        raw_result, raw_dir = _mine_store(tmp_path, "raw", None)
        z_result, z_dir = _mine_store(tmp_path, "zlib", "zlib")
        assert [str(p) for p in raw_result.patterns] == [
            str(p) for p in z_result.patterns
        ]
        raw_store = PatternStore.open(raw_dir)
        z_store = PatternStore.open(z_dir)
        assert raw_store.compression is None
        assert z_store.compression == "zlib"
        assert [c.code for c in raw_store.classes] == [
            c.code for c in z_store.classes
        ]
        assert raw_store.border == z_store.border
        for raw_cls, z_cls in zip(raw_store.classes, z_store.classes):
            assert (
                raw_store.load_index(raw_cls).dump_rows()
                == z_store.load_index(z_cls).dump_rows()
            )

    def test_manifest_negotiation(self, tmp_path):
        _, raw_dir = _mine_store(tmp_path, "raw", None)
        _, z_dir = _mine_store(tmp_path, "zlib", "zlib")
        raw_manifest = json.loads(
            (raw_dir / "manifest.json").read_text(encoding="utf-8")
        )
        z_manifest = json.loads(
            (z_dir / "manifest.json").read_text(encoding="utf-8")
        )
        # Raw stores stay on the legacy layout: no compression block,
        # same format version, plain JSON store files.
        assert "compression" not in raw_manifest
        assert raw_manifest["format_version"] == z_manifest["format_version"]
        block = z_manifest["compression"]
        assert block["codec"] == "zlib"
        for name, stats in block["files"].items():
            blob = (z_dir / name).read_bytes()
            assert is_container(blob)
            assert stats["stored"] == len(blob)
            assert container_raw_length(blob) == stats["raw"]
            assert (raw_dir / name).exists()
            assert not is_container((raw_dir / name).read_bytes())

    def test_compressed_store_saves_bytes(self, tmp_path):
        _, z_dir = _mine_store(tmp_path, "zlib", "zlib")
        store = PatternStore.open(z_dir)
        raw = sum(s["raw"] for s in store.compression_stats.values())
        stored = sum(s["stored"] for s in store.compression_stats.values())
        assert 0 < stored < raw

    def test_corrupt_compressed_file_is_a_store_error(self, tmp_path):
        _, z_dir = _mine_store(tmp_path, "zlib", "zlib")
        manifest_path = z_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        victim = sorted(manifest["compression"]["files"])[0]
        blob = bytearray((z_dir / victim).read_bytes())
        blob[-1] ^= 0xFF
        (z_dir / victim).write_bytes(bytes(blob))
        with pytest.raises(StoreError):
            PatternStore.open(z_dir)


def _fill_wal(directory, compress, n=24, segment_max_bytes=600):
    wal = WriteAheadLog(
        directory,
        segment_max_bytes=segment_max_bytes,
        fsync=False,
        compress=compress,
    )
    for i in range(n):
        wal.append(
            DatabaseDelta(add_text=f"# delta {i}\n" + "g\n" * (i % 5 + 1))
        )
    return wal


class TestWALCompression:
    def test_mixed_fleet_parity(self, tmp_path):
        """Raw and compressed WALs agree on every logical byte.

        Segment views, chunk reads and shipper digests are all defined
        over *uncompressed frame bytes*, so a follower syncing from a
        compressed primary sees exactly what a raw primary would send.
        """
        raw = _fill_wal(tmp_path / "raw", None)
        comp = _fill_wal(tmp_path / "comp", "zlib")
        try:
            raw_views = raw.segment_views()
            comp_views = comp.segment_views()
            assert [
                (v.start_seq, v.end_seq, v.size_bytes, v.sealed)
                for v in raw_views
            ] == [
                (v.start_seq, v.end_seq, v.size_bytes, v.sealed)
                for v in comp_views
            ]
            assert len(raw_views) > 2  # rotation actually happened
            for view in raw_views:
                a = raw.read_segment_chunk(view.start_seq, 0, 1 << 20)
                b = comp.read_segment_chunk(view.start_seq, 0, 1 << 20)
                assert a == b
                records, _ = decode_frames(b, view.start_seq)
                assert [r.seq for r in records] == list(
                    range(view.start_seq, view.start_seq + len(records))
                )
            # Interior chunk reads address logical offsets too.
            sealed = raw_views[0]
            assert raw.read_segment_chunk(
                sealed.start_seq, 10, 32
            ) == comp.read_segment_chunk(sealed.start_seq, 10, 32)
            raw_ship = SegmentShipper(raw, tmp_path / "raw-store")
            comp_ship = SegmentShipper(comp, tmp_path / "comp-store")
            raw_doc = raw_ship.manifest()
            comp_doc = comp_ship.manifest()
            assert raw_doc["segments"] == comp_doc["segments"]
            assert raw_doc["watermark"] == comp_doc["watermark"]
        finally:
            raw.close()
            comp.close()

    def test_sealed_files_are_actually_compressed(self, tmp_path):
        wal = _fill_wal(tmp_path / "wal", "zlib")
        try:
            views = wal.segment_views()
            paths = sorted(wal.directory.glob("*.seg"))
            assert len(paths) == len(views)
            for path, view in zip(paths, views):
                head = path.read_bytes()[:4]
                if view.sealed:
                    assert is_container(head)
                    # Physical file is smaller than the logical bytes.
                    assert path.stat().st_size < view.size_bytes
                else:
                    assert not is_container(head)
        finally:
            wal.close()

    def test_reopen_and_append(self, tmp_path):
        wal = _fill_wal(tmp_path / "wal", "zlib")
        last = wal.last_seq
        wal.close()
        reopened = WriteAheadLog(
            tmp_path / "wal", fsync=False, compress="zlib"
        )
        try:
            assert reopened.last_seq == last
            seq = reopened.append(DatabaseDelta(add_text="# after reopen\n"))
            assert seq == last + 1
            records = list(reopened.read_from(0))
            assert [r.seq for r in records] == list(range(last + 2))
        finally:
            reopened.close()

    def test_raw_log_reads_compressed_leftovers(self, tmp_path):
        """Turning compression off never strands old sealed segments."""
        wal = _fill_wal(tmp_path / "wal", "zlib")
        last = wal.last_seq
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal", fsync=False)
        try:
            assert reopened.last_seq == last
            assert [r.seq for r in reopened.read_from(0)] == list(
                range(last + 1)
            )
        finally:
            reopened.close()

    def test_crash_window_between_seal_and_new_active(self, tmp_path):
        """A compressed tail with no fresh active segment is recoverable.

        Rotation compresses the sealed segment and *then* creates the
        next active file; a crash in between leaves the newest on-disk
        segment compressed.  Reopen must treat it as sealed (it is
        complete by construction) and start a new active segment rather
        than appending raw frames into a container.
        """
        wal = _fill_wal(tmp_path / "wal", "zlib", n=6, segment_max_bytes=1 << 20)
        last = wal.last_seq
        wal.close()
        (active,) = sorted(tmp_path.joinpath("wal").glob("*.seg"))
        active.write_bytes(encode_container(active.read_bytes(), "zlib"))

        reopened = WriteAheadLog(
            tmp_path / "wal", fsync=False, compress="zlib"
        )
        try:
            assert reopened.last_seq == last
            views = reopened.segment_views()
            assert views[0].sealed and not views[-1].sealed
            seq = reopened.append(DatabaseDelta(add_text="# post crash\n"))
            assert seq == last + 1
            assert [r.seq for r in reopened.read_from(0)] == list(
                range(last + 2)
            )
        finally:
            reopened.close()

    def test_truncate_applied_drops_compressed_segments(self, tmp_path):
        wal = _fill_wal(tmp_path / "wal", "zlib")
        try:
            views = wal.segment_views()
            assert views[1].sealed
            dropped = wal.truncate_applied(views[1].end_seq)
            assert dropped >= 1
            remaining = wal.segment_views()
            assert remaining[0].start_seq > views[0].start_seq
            chunk = wal.read_segment_chunk(remaining[0].start_seq, 0, 1 << 20)
            records, _ = decode_frames(chunk, remaining[0].start_seq)
            assert records
        finally:
            wal.close()
