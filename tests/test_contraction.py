"""Soundness tests for enhancement (d): taxonomy contraction.

The paper removes a taxonomy concept when a child has the same occurrence
set.  On DAG taxonomies the naive form is unsound (see DESIGN.md); our
implementation only removes an unobserved interior concept when one
child generalizes *every observed label* the concept generalizes.  These
tests pin both directions: redundant concepts go, diamond corners stay.
"""

from __future__ import annotations

from repro.core.taxogram import Taxogram, TaxogramOptions, mine, mine_baseline
from repro.core.taxogram import _contract_taxonomy
from repro.graphs.database import GraphDatabase
from repro.taxonomy.builders import taxonomy_from_parent_names


class TestContractTaxonomy:
    def test_redundant_chain_collapsed(self):
        # root -> mid -> leaf; only leaf observed: mid is redundant.
        tax = taxonomy_from_parent_names({"mid": "root", "leaf": "mid"})
        contracted = _contract_taxonomy(tax, {tax.id_of("leaf")})
        names = {contracted.name_of(l) for l in contracted.labels()}
        assert "mid" not in names
        assert {"root", "leaf"} <= names

    def test_observed_concepts_never_removed(self):
        tax = taxonomy_from_parent_names({"mid": "root", "leaf": "mid"})
        observed = {tax.id_of("mid"), tax.id_of("leaf")}
        contracted = _contract_taxonomy(tax, observed)
        names = {contracted.name_of(l) for l in contracted.labels()}
        assert "mid" in names

    def test_roots_never_removed(self):
        tax = taxonomy_from_parent_names({"leaf": "root"})
        contracted = _contract_taxonomy(tax, {tax.id_of("leaf")})
        names = {contracted.name_of(l) for l in contracted.labels()}
        assert "root" in names

    def test_diamond_corner_kept(self):
        # root -> {l, r} -> leaf1/leaf2 under BOTH l and r.
        # l does not dominate r's observed descendants and vice versa
        # when the observed sets split, so neither corner may go.
        tax = taxonomy_from_parent_names(
            {
                "l": "root",
                "r": "root",
                "leaf1": ["l", "r"],
                "leaf2": ["l"],
            }
        )
        observed = {tax.id_of("leaf1"), tax.id_of("leaf2")}
        contracted = _contract_taxonomy(tax, observed)
        names = {contracted.name_of(l) for l in contracted.labels()}
        # l generalizes {leaf1, leaf2}; its only child chain... l cannot be
        # removed (leaf2 only reachable under l); r's observed set {leaf1}
        # is fully generalized by its child leaf1 -> r is removable.
        assert "l" in names
        assert "r" not in names

    def test_cascading_removal(self):
        tax = taxonomy_from_parent_names(
            {"a": "root", "b": "a", "c": "b", "leaf": "c"}
        )
        contracted = _contract_taxonomy(tax, {tax.id_of("leaf")})
        names = {contracted.name_of(l) for l in contracted.labels()}
        assert names & {"a", "b", "c"} == set()
        leaf = contracted.id_of("leaf")
        assert contracted.parents_of(leaf) == (contracted.id_of("root"),)


class TestContractionPreservesResults:
    def test_deep_chain_results_identical(self):
        tax = taxonomy_from_parent_names(
            {"a": "root", "b": "a", "c": "b", "leaf": "c", "x": "root"}
        )
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["leaf", "x"], [(0, 1)])
        db.new_graph(["leaf", "x"], [(0, 1)])
        db.new_graph(["c", "x"], [(0, 1)])
        with_d = mine(db, tax, min_support=0.5)
        without_d = Taxogram(
            TaxogramOptions(
                min_support=0.5, enhancement_taxonomy_contraction=False
            )
        ).mine(db, tax)
        baseline = mine_baseline(db, tax, min_support=0.5)
        assert with_d.pattern_codes() == without_d.pattern_codes()
        assert with_d.pattern_codes() == baseline.pattern_codes()

    def test_diamond_results_identical(self):
        tax = taxonomy_from_parent_names(
            {
                "l": "root",
                "r": "root",
                "o1": ["l", "r"],
                "o2": ["l", "r"],
                "x": "root",
            }
        )
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["o1", "x"], [(0, 1)])
        db.new_graph(["o2", "x"], [(0, 1)])
        with_d = mine(db, tax, min_support=1.0)
        without_d = Taxogram(
            TaxogramOptions(
                min_support=1.0, enhancement_taxonomy_contraction=False
            )
        ).mine(db, tax)
        assert with_d.pattern_codes() == without_d.pattern_codes()
        # Both diamond corners generalize {o1, o2} with support 1 and
        # neither child keeps support 1 alone: both l-x and r-x are
        # minimal patterns and must be present.
        label_sets = {
            frozenset(
                tax.name_of(p.graph.node_label(v)) for v in p.graph.nodes()
            )
            for p in with_d
        }
        assert frozenset({"l", "x"}) in label_sets
        assert frozenset({"r", "x"}) in label_sets
