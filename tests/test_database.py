"""Unit tests for :mod:`repro.graphs.database`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.util.interner import LabelInterner


class TestNewGraph:
    def test_labels_interned_and_ids_assigned(self):
        db = GraphDatabase()
        g1 = db.new_graph(["a", "b"], [(0, 1, "x")])
        g2 = db.new_graph(["b", "a"], [(0, 1)])
        assert g1.graph_id == 0
        assert g2.graph_id == 1
        assert len(db) == 2
        assert db.node_label_name(g1.node_label(0)) == "a"
        assert g1.node_label(1) == g2.node_label(0)  # shared interner
        assert db.edge_label_name(g1.edge_label(0, 1)) == "x"
        assert db.edge_label_name(g2.edge_label(0, 1)) == "-"

    def test_add_graph_checks_labels(self):
        db = GraphDatabase()
        rogue = Graph.from_edges([99], [])
        with pytest.raises(GraphError, match="not present"):
            db.add_graph(rogue)

    def test_shared_interner_with_taxonomy(self):
        interner = LabelInterner(["root", "leaf"])
        db = GraphDatabase(node_labels=interner)
        g = db.new_graph(["leaf"], [])
        assert g.node_label(0) == interner.id_of("leaf")


class TestAccess:
    def _db(self) -> GraphDatabase:
        db = GraphDatabase()
        db.new_graph(["a", "b"], [(0, 1)])
        db.new_graph(["c"], [])
        return db

    def test_indexing_and_iteration(self):
        db = self._db()
        assert db[0].num_nodes == 2
        assert [g.graph_id for g in db] == [0, 1]
        assert len(db.graphs) == 2

    def test_distinct_node_labels(self):
        db = self._db()
        names = {db.node_label_name(l) for l in db.distinct_node_labels()}
        assert names == {"a", "b", "c"}

    def test_stats(self):
        stats = self._db().stats()
        assert stats.graph_count == 2
        assert stats.avg_nodes == 1.5

    def test_copy_independent(self):
        db = self._db()
        clone = db.copy()
        clone[0].relabel_node(0, clone.node_labels.intern("z"))
        assert db.node_label_name(db[0].node_label(0)) == "a"
        assert len(clone) == len(db)

    def test_repr(self):
        assert "graphs=2" in repr(self._db())
