"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import pytest

from repro.datagen.datasets import (
    DATASET_FAMILIES,
    PAPER_TABLE1,
    build_dataset,
    dataset_spec,
)
from repro.datagen.graph_generator import (
    SyntheticGraphConfig,
    generate_graph_database,
)
from repro.exceptions import MiningError
from repro.taxonomy.generators import TaxonomyGeneratorConfig, generate_taxonomy
from repro.taxonomy.go import go_like_taxonomy


class TestGraphGenerator:
    def _taxonomy(self):
        return go_like_taxonomy(concept_count=150, seed=3)

    def test_counts_and_labels_from_taxonomy(self):
        tax = self._taxonomy()
        config = SyntheticGraphConfig(graph_count=20, max_graph_edges=10, seed=1)
        db = generate_graph_database(tax, config)
        assert len(db) == 20
        for graph in db:
            assert graph.num_edges <= 10
            for label in graph.node_labels():
                assert label in tax

    def test_deterministic_by_seed(self):
        tax = self._taxonomy()
        config = SyntheticGraphConfig(graph_count=10, seed=5)
        a = generate_graph_database(tax, config)
        b = generate_graph_database(tax, config)
        for ga, gb in zip(a, b):
            assert ga.structure_key() == gb.structure_key()

    def test_edge_density_targeted(self):
        tax = self._taxonomy()
        for density in (0.1, 0.3):
            config = SyntheticGraphConfig(
                graph_count=40, max_graph_edges=20, edge_density=density, seed=2
            )
            stats = generate_graph_database(tax, config).stats()
            assert abs(stats.avg_edge_density - density) < 0.12

    def test_uniform_level_mode(self):
        tax = self._taxonomy()
        config = SyntheticGraphConfig(
            graph_count=30, label_selection="uniform-level", seed=4
        )
        db = generate_graph_database(tax, config)
        depths = {
            tax.depth_of(label)
            for graph in db
            for label in graph.node_labels()
        }
        # Uniform per-level selection reaches shallow and deep levels.
        assert 0 in depths or 1 in depths
        assert max(depths) >= tax.max_depth() - 2

    def test_invalid_configs_rejected(self):
        tax = self._taxonomy()
        with pytest.raises(MiningError):
            generate_graph_database(tax, SyntheticGraphConfig(graph_count=0))
        with pytest.raises(MiningError):
            generate_graph_database(
                tax, SyntheticGraphConfig(edge_density=0.0)
            )
        with pytest.raises(MiningError):
            generate_graph_database(
                tax, SyntheticGraphConfig(label_selection="bogus")
            )
        with pytest.raises(MiningError):
            generate_graph_database(
                tax, SyntheticGraphConfig(max_graph_edges=0)
            )

    def test_edge_labels_bounded(self):
        tax = self._taxonomy()
        config = SyntheticGraphConfig(graph_count=10, edge_label_count=3, seed=6)
        db = generate_graph_database(tax, config)
        labels = {e for g in db for _, _, e in g.edges()}
        assert labels <= {0, 1, 2}


class TestDatasetSpecs:
    def test_every_table1_row_has_a_spec(self):
        spec_names = {
            spec.name for family in DATASET_FAMILIES.values() for spec in family
        }
        assert spec_names == set(PAPER_TABLE1)

    def test_lookup(self):
        spec = dataset_spec("D4000")
        assert spec.graph_count == 4000
        assert spec.family == "D"
        with pytest.raises(MiningError):
            dataset_spec("NOPE")

    def test_paper_row_sizes_match_specs(self):
        for family in DATASET_FAMILIES.values():
            for spec in family:
                paper = PAPER_TABLE1[spec.name]
                assert spec.graph_count == paper[0]

    @pytest.mark.parametrize("name", ["D1000", "NC10", "ED06", "TD5", "TS25"])
    def test_build_scaled(self, name):
        spec = dataset_spec(name)
        db, tax = build_dataset(spec, graph_scale=0.01, taxonomy_scale=0.02)
        assert len(db) >= 8
        assert len(tax) >= 12
        for graph in db:
            for label in graph.node_labels():
                assert label in tax

    def test_build_pte(self):
        db, tax = build_dataset(dataset_spec("PTE"), graph_scale=0.1)
        assert len(db) == 42
        assert tax.name_of(tax.roots()[0]) == "atom"

    def test_td_family_depth_honored(self):
        spec = dataset_spec("TD7")
        _db, tax = build_dataset(spec, graph_scale=0.005, taxonomy_scale=0.2)
        assert tax.max_depth() == 7

    def test_ts_family_concept_scaling(self):
        spec = dataset_spec("TS400")
        _db, tax = build_dataset(spec, graph_scale=0.005, taxonomy_scale=0.5)
        assert len(tax) == 200
