"""Tests for DFS codes and minimum-code canonicalization."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MiningError
from repro.graphs.graph import Graph
from repro.mining.dfs_code import (
    DFSCode,
    code_lt,
    dfs_edge_lt,
    graph_from_code,
    is_min_code,
    min_dfs_code,
)


def random_connected_graph(rng: random.Random, max_nodes: int = 6) -> Graph:
    """A random connected labeled graph with at least one edge."""
    n = rng.randint(2, max_nodes)
    g = Graph()
    for _ in range(n):
        g.add_node(rng.randrange(3))
    # Spanning tree for connectivity, then extra edges.
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v, rng.randrange(2))
    for _ in range(rng.randint(0, n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, rng.randrange(2))
    return g


def permuted(g: Graph, rng: random.Random) -> Graph:
    perm = list(range(g.num_nodes))
    rng.shuffle(perm)
    out = Graph()
    for _ in range(g.num_nodes):
        out.add_node(0)
    for v in g.nodes():
        out.relabel_node(perm[v], g.node_label(v))
    for u, v, e in g.edges():
        out.add_edge(perm[u], perm[v], e)
    return out


class TestEdgeOrder:
    def test_backward_before_forward_from_rightmost(self):
        backward = (2, 0, 5, 0, 5)
        forward = (2, 3, 5, 0, 5)
        assert dfs_edge_lt(backward, forward)
        assert not dfs_edge_lt(forward, backward)

    def test_forward_deeper_anchor_first(self):
        deeper = (2, 3, 1, 0, 1)
        shallower = (1, 3, 1, 0, 1)
        assert dfs_edge_lt(deeper, shallower)

    def test_forward_label_tiebreak(self):
        small = (2, 3, 1, 0, 1)
        large = (2, 3, 1, 0, 2)
        assert dfs_edge_lt(small, large)

    def test_backward_smaller_target_first(self):
        early = (3, 0, 1, 0, 1)
        late = (3, 1, 1, 0, 1)
        assert dfs_edge_lt(early, late)

    def test_code_lt_prefix(self):
        e = (0, 1, 1, 0, 1)
        assert code_lt([e], [e, (1, 2, 1, 0, 1)])
        assert not code_lt([e, (1, 2, 1, 0, 1)], [e])


class TestDFSCode:
    def test_vertex_labels_derived(self):
        code = DFSCode([(0, 1, 5, 9, 6), (1, 2, 6, 9, 7)])
        assert code.vertex_labels == (5, 6, 7)
        assert code.num_vertices == 3

    def test_inconsistent_labels_rejected(self):
        with pytest.raises(MiningError, match="inconsistent"):
            DFSCode([(0, 1, 5, 9, 6), (1, 0, 7, 9, 5)])

    def test_rightmost_path(self):
        # 0 -f-> 1 -f-> 2, then backward 2->0, then forward from 1.
        code = DFSCode(
            [
                (0, 1, 1, 0, 1),
                (1, 2, 1, 0, 1),
                (2, 0, 1, 0, 1),
                (1, 3, 1, 0, 2),
            ]
        )
        assert code.rightmost_path == (0, 1, 3)
        assert code.rightmost_vertex == 3

    def test_to_graph_round_trip(self):
        code = DFSCode([(0, 1, 5, 9, 6), (1, 2, 6, 8, 7), (2, 0, 7, 9, 5)])
        g = code.to_graph()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.edge_label(1, 2) == 8

    def test_empty_code(self):
        code = DFSCode(())
        assert code.num_vertices == 0
        with pytest.raises(MiningError):
            _ = code.rightmost_vertex

    def test_dense_vertex_ids_required(self):
        with pytest.raises(MiningError, match="dense"):
            DFSCode([(0, 2, 1, 0, 1)])


class TestMinCode:
    def test_single_edge_orientation(self):
        g = Graph.from_edges([2, 1], [(0, 1, 5)])
        code = min_dfs_code(g)
        assert code.edges == ((0, 1, 1, 5, 2),)  # smaller label first

    def test_is_min_accepts_min(self):
        g = Graph.from_edges([1, 1, 2], [(0, 1, 0), (1, 2, 0), (0, 2, 0)])
        assert is_min_code(min_dfs_code(g))

    def test_is_min_rejects_non_min(self):
        # Same triangle, but started from the larger label.
        non_min = DFSCode([(0, 1, 2, 0, 1), (1, 2, 1, 0, 1), (2, 0, 1, 0, 2)])
        assert not is_min_code(non_min)

    def test_empty_and_single_node(self):
        assert min_dfs_code(Graph.from_edges([7], [])).edges == ()
        assert is_min_code(DFSCode(()))

    def test_disconnected_rejected(self):
        g = Graph.from_edges([1, 1, 1], [(0, 1)])
        with pytest.raises(MiningError, match="not connected"):
            min_dfs_code(g)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_permutation_invariance(self, seed):
        rng = random.Random(seed)
        g = random_connected_graph(rng)
        assert min_dfs_code(permuted(g, rng)) == min_dfs_code(g)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_min_code_is_min_and_reconstructs(self, seed):
        rng = random.Random(seed)
        g = random_connected_graph(rng)
        code = min_dfs_code(g)
        assert is_min_code(code)
        rebuilt = graph_from_code(code)
        assert min_dfs_code(rebuilt) == code
        assert rebuilt.num_nodes == g.num_nodes
        assert rebuilt.num_edges == g.num_edges

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_distinct_labelings_get_distinct_codes(self, seed):
        rng = random.Random(seed)
        g = random_connected_graph(rng, max_nodes=4)
        g2 = g.copy()
        v = rng.randrange(g2.num_nodes)
        g2.relabel_node(v, g2.node_label(v) + 10)  # certainly not isomorphic
        assert min_dfs_code(g) != min_dfs_code(g2)
