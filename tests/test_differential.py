"""Differential harness: oracle vs Taxogram vs the parallel runtime.

Every seed builds one randomized ``(taxonomy, database, sigma)`` triple
(odd seeds are DAGs, seeds divisible by 3 are multi-root) and runs the
brute-force oracle, the sequential Taxogram pipeline, and the
multi-process runtime (``workers=2``) on identical inputs.  The three
must agree on the exact pattern set, and the observability counters must
be mutually consistent:

* sequential and parallel agree exactly on the equivalence counters
  (pattern classes, bit-set intersections, candidates enumerated, ...);
* when the run genuinely sharded, the merged per-shard pattern counts
  are an upper bound on the sequential class count — every globally
  frequent class is locally frequent on at least one shard (the
  pigeonhole relaxation), so the shard union can only over-approximate.

The default matrix keeps tier-1 fast; the wide matrix runs under
``RUN_SLOW=1`` (see ``conftest.pytest_collection_modifyitems``).
"""

from __future__ import annotations

import random

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.graphs.database import GraphDatabase
from repro.incremental import DatabaseDelta, IncrementalTaxogram
from repro.util.interner import LabelInterner
from tests.conftest import (
    make_differential_case,
    make_random_database,
    make_random_taxonomy,
)

DEFAULT_SEEDS = list(range(25))
WIDE_SEEDS = list(range(25, 75))
STREAM_SEEDS = list(range(6))
WIDE_STREAM_SEEDS = list(range(6, 18))


def _assert_consistent(oracle, sequential, parallel) -> None:
    # 1. Exact pattern-set agreement, supports included.
    assert sequential.pattern_codes() == oracle.pattern_codes()
    assert parallel.pattern_codes() == oracle.pattern_codes()
    oracle_map = oracle.pattern_codes()
    for pattern in sequential:
        assert pattern.support_set == oracle_map[pattern.code]

    # 2. Counter identity on the equivalence fields (parallel merge must
    #    reconstruct the sequential work profile exactly).
    seq, par = sequential.counters, parallel.counters
    assert par.pattern_classes == seq.pattern_classes
    assert par.embedding_extensions == seq.embedding_extensions
    assert par.occurrence_index_updates == seq.occurrence_index_updates
    assert par.bitset_intersections == seq.bitset_intersections
    assert par.candidates_enumerated == seq.candidates_enumerated
    assert par.overgeneralized_eliminated == seq.overgeneralized_eliminated
    assert par.oie_entries == seq.oie_entries

    # 3. Reports ride on every result; counter views agree with the raw
    #    counter block.
    assert sequential.report is not None
    assert parallel.report is not None
    assert (
        sequential.report.counter("mine.pattern_classes")
        == seq.pattern_classes
    )

    # 4. Pigeonhole: if the run actually fanned out, the merged shard
    #    pattern counts dominate the sequential class count.
    shards = parallel.report.counter("parallel.shards")
    if shards >= 2:
        assert (
            parallel.report.counter("parallel.shard_patterns_total")
            >= seq.pattern_classes
        )
        assert parallel.worker_seconds  # the pool genuinely ran
    else:
        # Shard floor not met: the runtime fell back to the sequential
        # path and must say so.
        assert parallel.worker_seconds == {}


class TestDifferentialMatrix:
    @pytest.mark.parametrize("seed", DEFAULT_SEEDS)
    def test_triple_agreement(self, differential_runner, seed):
        oracle, sequential, parallel = differential_runner(seed)
        _assert_consistent(oracle, sequential, parallel)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", WIDE_SEEDS)
    def test_triple_agreement_wide(self, differential_runner, seed):
        oracle, sequential, parallel = differential_runner(seed)
        _assert_consistent(oracle, sequential, parallel)

    def test_matrix_covers_dag_and_multiroot(self):
        # The seed -> shape mapping is load-bearing for coverage claims;
        # pin it so a refactor of make_differential_case can't silently
        # shrink the matrix to trees only.
        shapes = set()
        for seed in DEFAULT_SEEDS:
            _db, taxonomy, _sigma = make_differential_case(seed)
            multi_parent = any(
                len(taxonomy.parents_of(label)) > 1
                for label in taxonomy.labels()
            )
            shapes.add((multi_parent, len(taxonomy.roots()) > 1))
        assert any(dag for dag, _ in shapes), "no DAG taxonomy in matrix"
        assert any(multi for _, multi in shapes), "no multi-root taxonomy"

    def test_matrix_exercises_real_sharding(self, differential_runner):
        # At least a few default seeds must clear the shard floor, or
        # the pigeonhole assertion above would be vacuous.
        sharded = 0
        for seed in DEFAULT_SEEDS[:12]:
            _oracle, _sequential, parallel = differential_runner(seed)
            if parallel.report.counter("parallel.shards") >= 2:
                sharded += 1
        assert sharded >= 3


def _removed_then_added(
    current: GraphDatabase,
    add_db: GraphDatabase | None,
    remove_ids: tuple[int, ...],
) -> GraphDatabase:
    """The reference updated database: survivors in order, then adds.

    Adds are re-added *by name*: ``add_db`` has its own edge-label
    interner, so raw label ids would mean different names in ``out``.
    """
    out = GraphDatabase(current.node_labels, current.edge_labels)
    removed = set(remove_ids)
    for graph in current:
        if graph.graph_id not in removed:
            out.add_graph(graph.copy())
    if add_db is not None:
        for graph in add_db:
            out.new_graph(
                [
                    add_db.node_labels.name_of(graph.node_label(v))
                    for v in graph.nodes()
                ],
                [
                    (u, v, add_db.edge_labels.name_of(label))
                    for u, v, label in graph.edges()
                ],
            )
    return out


def _run_stream(tmp_path, seed: int, mode: str, steps: int = 3) -> None:
    """Mine to a store, stream deltas through it, and require the update
    result to be bit-identical to fresh mining after every step."""
    rng = random.Random(1000 + seed)
    interner = LabelInterner()
    taxonomy = make_random_taxonomy(
        rng,
        interner,
        rng.randint(4, 8),
        dag=seed % 2 == 1,
        multiroot=seed % 3 == 0,
    )
    current = make_random_database(rng, taxonomy, rng.randint(10, 14))
    sigma = rng.choice([0.3, 0.4, 0.5])
    store_dir = tmp_path / "store"
    Taxogram(
        TaxogramOptions(min_support=sigma, max_edges=2, store_out=str(store_dir))
    ).mine(current, taxonomy)
    updater = IncrementalTaxogram(store_dir)
    for _step in range(steps):
        add_db = None
        remove_ids: tuple[int, ...] = ()
        if mode in ("add", "mixed"):
            add_db = make_random_database(rng, taxonomy, 1)
        if mode in ("remove", "mixed") and len(current) > 4:
            remove_ids = tuple(
                sorted(rng.sample(range(len(current)), rng.randint(1, 2)))
            )
        delta = DatabaseDelta(
            add_text=(
                DatabaseDelta.adding(add_db).add_text
                if add_db is not None
                else ""
            ),
            remove_ids=remove_ids,
        )
        result = updater.apply(delta)
        current = _removed_then_added(current, add_db, remove_ids)
        fresh = Taxogram(
            TaxogramOptions(min_support=sigma, max_edges=2)
        ).mine(current, taxonomy)
        assert result.pattern_codes() == fresh.pattern_codes()
        assert [
            (p.class_id, p.code, p.support_count) for p in result.patterns
        ] == [(p.class_id, p.code, p.support_count) for p in fresh.patterns]
        assert result.database_size == len(current)


class TestIncrementalStreams:
    """Randomized delta streams vs fresh mining (DAG + multi-root seeds)."""

    @pytest.mark.parametrize("seed", STREAM_SEEDS)
    def test_add_only_stream(self, tmp_path, seed):
        _run_stream(tmp_path, seed, "add")

    @pytest.mark.parametrize("seed", STREAM_SEEDS)
    def test_remove_only_stream(self, tmp_path, seed):
        _run_stream(tmp_path, seed, "remove")

    @pytest.mark.parametrize("seed", STREAM_SEEDS)
    def test_mixed_stream(self, tmp_path, seed):
        _run_stream(tmp_path, seed, "mixed")

    def test_stream_matrix_covers_dag_and_multiroot(self):
        # Same coverage pin as the main matrix: the seed -> shape mapping
        # must keep exercising DAG and multi-root taxonomies.
        assert any(seed % 2 == 1 for seed in STREAM_SEEDS)
        assert any(seed % 3 == 0 for seed in STREAM_SEEDS)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", WIDE_STREAM_SEEDS)
    @pytest.mark.parametrize("mode", ["add", "remove", "mixed"])
    def test_long_stream_wide(self, tmp_path, seed, mode):
        _run_stream(tmp_path, seed, mode, steps=8)


COMPRESSION_SEEDS = [1, 4]
WIDE_COMPRESSION_SEEDS = [7, 9, 12, 15]


def _mine_store_variant(tmp_path, case, name, workers, compression):
    database, taxonomy, sigma = case
    store_dir = tmp_path / name
    result = Taxogram(
        TaxogramOptions(
            min_support=sigma,
            max_edges=2,
            workers=workers,
            store_out=str(store_dir),
            store_compression=compression,
        )
    ).mine(database, taxonomy)
    return result, store_dir


def _serving_answer(store_dir) -> str:
    """A canonical JSON rendering of the reader's top-k answer."""
    import json

    from repro.serving.endpoints import value_payload
    from repro.serving.reader import StoreReader

    reader = StoreReader(store_dir)
    answer = reader.query("top_k", k=100)
    return json.dumps(
        value_payload(reader, "top_k", answer.value), sort_keys=True
    )


def _check_compression_variants(tmp_path, seed: int) -> None:
    """Store compression and parallelism are both invisible to results.

    Four variants of one case — {sequential, workers=2} x {raw, zlib} —
    must produce identical pattern sets, identical specialize-phase
    work counters (per worker count), identical persisted class/border
    state, and byte-identical serving answers.
    """
    from repro.incremental.store import PatternStore

    case = make_differential_case(seed)
    variants = {}
    for workers in (1, 2):
        for compression in (None, "zlib"):
            name = f"w{workers}-{compression or 'raw'}"
            variants[name] = _mine_store_variant(
                tmp_path, case, name, workers, compression
            )

    codes = {
        name: result.pattern_codes()
        for name, (result, _dir) in variants.items()
    }
    reference = codes["w1-raw"]
    for name, value in codes.items():
        assert value == reference, name

    # Compression must not perturb the work profile: same-worker pairs
    # agree counter for counter on the specialize-phase fields.
    for workers in (1, 2):
        raw_c = variants[f"w{workers}-raw"][0].counters
        z_c = variants[f"w{workers}-zlib"][0].counters
        assert z_c.pattern_classes == raw_c.pattern_classes
        assert z_c.embedding_extensions == raw_c.embedding_extensions
        assert z_c.bitset_intersections == raw_c.bitset_intersections
        assert z_c.candidates_enumerated == raw_c.candidates_enumerated
        assert (
            z_c.overgeneralized_eliminated == raw_c.overgeneralized_eliminated
        )
        assert z_c.oie_entries == raw_c.oie_entries

    stores = {
        name: PatternStore.open(store_dir)
        for name, (_result, store_dir) in variants.items()
    }
    ref_store = stores["w1-raw"]
    for name, store in stores.items():
        assert [c.code for c in store.classes] == [
            c.code for c in ref_store.classes
        ], name
        assert store.border == ref_store.border, name
        assert store.compression == (
            "zlib" if name.endswith("zlib") else None
        )
    for ref_cls, z_cls in zip(ref_store.classes, stores["w1-zlib"].classes):
        assert (
            ref_store.load_index(ref_cls).dump_rows()
            == stores["w1-zlib"].load_index(z_cls).dump_rows()
        )

    answers = {
        name: _serving_answer(store_dir)
        for name, (_result, store_dir) in variants.items()
    }
    for name, answer in answers.items():
        assert answer == answers["w1-raw"], name


class TestCompressionDifferential:
    """Widened matrix: compression on/off x sequential/workers=2."""

    @pytest.mark.parametrize("seed", COMPRESSION_SEEDS)
    def test_compression_invariance(self, tmp_path, seed):
        _check_compression_variants(tmp_path, seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", WIDE_COMPRESSION_SEEDS)
    def test_compression_invariance_wide(self, tmp_path, seed):
        _check_compression_variants(tmp_path, seed)


class TestGuaranteedShard:
    def test_sigma_one_always_shards(self, go_excerpt, pathway_db):
        # |D|=2, sigma=1.0 -> min_count=2 -> shards=min(2, 2, 1)=1:
        # too small.  Duplicate the pathways to |D|=4 so min_count=4 and
        # the shard floor (min_count - 1 >= 2) is guaranteed.
        db = pathway_db
        for gid in list(range(len(db))):
            graph = db[gid]
            db.new_graph(
                [
                    db.node_labels.name_of(graph.node_label(v))
                    for v in graph.nodes()
                ],
                [
                    (u, v, db.edge_labels.name_of(label))
                    for u, v, label in graph.edges()
                ],
            )
        sequential = Taxogram(
            TaxogramOptions(min_support=1.0, max_edges=3)
        ).mine(db, go_excerpt)
        parallel = Taxogram(
            TaxogramOptions(min_support=1.0, max_edges=3, workers=2)
        ).mine(db, go_excerpt)
        assert parallel.report.counter("parallel.shards") == 2
        assert parallel.pattern_codes() == sequential.pattern_codes()
        assert (
            parallel.report.counter("parallel.shard_patterns_total")
            >= sequential.counters.pattern_classes
        )
        assert sequential.counters.pattern_classes > 0
