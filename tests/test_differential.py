"""Differential harness: oracle vs Taxogram vs the parallel runtime.

Every seed builds one randomized ``(taxonomy, database, sigma)`` triple
(odd seeds are DAGs, seeds divisible by 3 are multi-root) and runs the
brute-force oracle, the sequential Taxogram pipeline, and the
multi-process runtime (``workers=2``) on identical inputs.  The three
must agree on the exact pattern set, and the observability counters must
be mutually consistent:

* sequential and parallel agree exactly on the equivalence counters
  (pattern classes, bit-set intersections, candidates enumerated, ...);
* when the run genuinely sharded, the merged per-shard pattern counts
  are an upper bound on the sequential class count — every globally
  frequent class is locally frequent on at least one shard (the
  pigeonhole relaxation), so the shard union can only over-approximate.

The default matrix keeps tier-1 fast; the wide matrix runs under
``RUN_SLOW=1`` (see ``conftest.pytest_collection_modifyitems``).
"""

from __future__ import annotations

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from tests.conftest import make_differential_case

DEFAULT_SEEDS = list(range(25))
WIDE_SEEDS = list(range(25, 75))


def _assert_consistent(oracle, sequential, parallel) -> None:
    # 1. Exact pattern-set agreement, supports included.
    assert sequential.pattern_codes() == oracle.pattern_codes()
    assert parallel.pattern_codes() == oracle.pattern_codes()
    oracle_map = oracle.pattern_codes()
    for pattern in sequential:
        assert pattern.support_set == oracle_map[pattern.code]

    # 2. Counter identity on the equivalence fields (parallel merge must
    #    reconstruct the sequential work profile exactly).
    seq, par = sequential.counters, parallel.counters
    assert par.pattern_classes == seq.pattern_classes
    assert par.embedding_extensions == seq.embedding_extensions
    assert par.occurrence_index_updates == seq.occurrence_index_updates
    assert par.bitset_intersections == seq.bitset_intersections
    assert par.candidates_enumerated == seq.candidates_enumerated
    assert par.overgeneralized_eliminated == seq.overgeneralized_eliminated
    assert par.oie_entries == seq.oie_entries

    # 3. Reports ride on every result; counter views agree with the raw
    #    counter block.
    assert sequential.report is not None
    assert parallel.report is not None
    assert (
        sequential.report.counter("mine.pattern_classes")
        == seq.pattern_classes
    )

    # 4. Pigeonhole: if the run actually fanned out, the merged shard
    #    pattern counts dominate the sequential class count.
    shards = parallel.report.counter("parallel.shards")
    if shards >= 2:
        assert (
            parallel.report.counter("parallel.shard_patterns_total")
            >= seq.pattern_classes
        )
        assert parallel.worker_seconds  # the pool genuinely ran
    else:
        # Shard floor not met: the runtime fell back to the sequential
        # path and must say so.
        assert parallel.worker_seconds == {}


class TestDifferentialMatrix:
    @pytest.mark.parametrize("seed", DEFAULT_SEEDS)
    def test_triple_agreement(self, differential_runner, seed):
        oracle, sequential, parallel = differential_runner(seed)
        _assert_consistent(oracle, sequential, parallel)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", WIDE_SEEDS)
    def test_triple_agreement_wide(self, differential_runner, seed):
        oracle, sequential, parallel = differential_runner(seed)
        _assert_consistent(oracle, sequential, parallel)

    def test_matrix_covers_dag_and_multiroot(self):
        # The seed -> shape mapping is load-bearing for coverage claims;
        # pin it so a refactor of make_differential_case can't silently
        # shrink the matrix to trees only.
        shapes = set()
        for seed in DEFAULT_SEEDS:
            _db, taxonomy, _sigma = make_differential_case(seed)
            multi_parent = any(
                len(taxonomy.parents_of(label)) > 1
                for label in taxonomy.labels()
            )
            shapes.add((multi_parent, len(taxonomy.roots()) > 1))
        assert any(dag for dag, _ in shapes), "no DAG taxonomy in matrix"
        assert any(multi for _, multi in shapes), "no multi-root taxonomy"

    def test_matrix_exercises_real_sharding(self, differential_runner):
        # At least a few default seeds must clear the shard floor, or
        # the pigeonhole assertion above would be vacuous.
        sharded = 0
        for seed in DEFAULT_SEEDS[:12]:
            _oracle, _sequential, parallel = differential_runner(seed)
            if parallel.report.counter("parallel.shards") >= 2:
                sharded += 1
        assert sharded >= 3


class TestGuaranteedShard:
    def test_sigma_one_always_shards(self, go_excerpt, pathway_db):
        # |D|=2, sigma=1.0 -> min_count=2 -> shards=min(2, 2, 1)=1:
        # too small.  Duplicate the pathways to |D|=4 so min_count=4 and
        # the shard floor (min_count - 1 >= 2) is guaranteed.
        db = pathway_db
        for gid in list(range(len(db))):
            graph = db[gid]
            db.new_graph(
                [
                    db.node_labels.name_of(graph.node_label(v))
                    for v in graph.nodes()
                ],
                [
                    (u, v, db.edge_labels.name_of(label))
                    for u, v, label in graph.edges()
                ],
            )
        sequential = Taxogram(
            TaxogramOptions(min_support=1.0, max_edges=3)
        ).mine(db, go_excerpt)
        parallel = Taxogram(
            TaxogramOptions(min_support=1.0, max_edges=3, workers=2)
        ).mine(db, go_excerpt)
        assert parallel.report.counter("parallel.shards") == 2
        assert parallel.pattern_codes() == sequential.pattern_codes()
        assert (
            parallel.report.counter("parallel.shard_patterns_total")
            >= sequential.counters.pattern_classes
        )
        assert sequential.counters.pattern_classes > 0
