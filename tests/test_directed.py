"""Tests for the directed mining pipeline (repro.directed)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.directed.dfs_code import (
    DirectedDFSCode,
    digraph_from_code,
    is_min_dicode,
    min_directed_dfs_code,
)
from repro.directed.digraph import DiGraph, DiGraphDatabase
from repro.directed.gspan import DirectedGSpanMiner
from repro.directed.isomorphism import (
    directed_iter_embeddings,
    is_directed_generalized_isomorphic,
    is_directed_generalized_subgraph_isomorphic,
    is_directed_subgraph_isomorphic,
)
from repro.directed.taxogram import mine_directed, mine_directed_with_oracle
from repro.exceptions import GraphError, MiningError, TaxonomyError
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.util.interner import LabelInterner
from tests.conftest import make_random_taxonomy


def random_weak_digraph(rng: random.Random, labels: int = 3,
                        max_nodes: int = 5) -> DiGraph:
    n = rng.randint(2, max_nodes)
    g = DiGraph()
    for _ in range(n):
        g.add_node(rng.randrange(labels))
    for v in range(1, n):
        u = rng.randrange(v)
        if rng.random() < 0.5:
            g.add_arc(u, v, rng.randrange(2))
        else:
            g.add_arc(v, u, rng.randrange(2))
    for _ in range(rng.randint(0, n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_arc(u, v):
            g.add_arc(u, v, rng.randrange(2))
    return g


class TestDiGraph:
    def test_arcs_are_directional(self):
        g = DiGraph.from_arcs([1, 2], [(0, 1, 5)])
        assert g.has_arc(0, 1)
        assert not g.has_arc(1, 0)
        assert g.arc_label(0, 1) == 5
        with pytest.raises(GraphError, match="no arc"):
            g.arc_label(1, 0)

    def test_antiparallel_arcs_allowed(self):
        g = DiGraph.from_arcs([1, 1], [(0, 1, 2), (1, 0, 3)])
        assert g.num_edges == 2
        assert g.arc_label(0, 1) == 2
        assert g.arc_label(1, 0) == 3

    def test_duplicate_and_self_loop_rejected(self):
        g = DiGraph.from_arcs([1, 2], [(0, 1)])
        with pytest.raises(GraphError, match="duplicate"):
            g.add_arc(0, 1)
        with pytest.raises(GraphError, match="self-loop"):
            g.add_arc(0, 0)

    def test_in_out_items_and_degree(self):
        g = DiGraph.from_arcs([1, 2, 3], [(0, 1, 7), (2, 1, 8)])
        assert dict(g.out_items(0)) == {1: 7}
        assert dict(g.in_items(1)) == {0: 7, 2: 8}
        assert g.undirected_degree(1) == 2

    def test_weak_connectivity(self):
        assert DiGraph.from_arcs([1, 2], [(0, 1)]).is_weakly_connected()
        assert not DiGraph.from_arcs([1, 2, 3], [(0, 1)]).is_weakly_connected()

    def test_database(self):
        db = DiGraphDatabase()
        g = db.new_graph(["a", "b"], [(0, 1, "x")])
        assert g.graph_id == 0
        assert len(db) == 1
        assert db.stats().avg_edges == 1.0
        clone = db.copy()
        clone[0].relabel_node(0, clone.node_labels.intern("z"))
        assert db.node_labels.name_of(db[0].node_label(0)) == "a"


class TestDirectedCanonicalForm:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_permutation_invariance(self, seed):
        rng = random.Random(seed)
        g = random_weak_digraph(rng)
        code = min_directed_dfs_code(g)
        assert is_min_dicode(code)
        perm = list(range(g.num_nodes))
        rng.shuffle(perm)
        g2 = DiGraph()
        for _ in range(g.num_nodes):
            g2.add_node(0)
        for v in g.nodes():
            g2.relabel_node(perm[v], g.node_label(v))
        for u, v, e in g.arcs():
            g2.add_arc(perm[u], perm[v], e)
        assert min_directed_dfs_code(g2) == code

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_round_trip(self, seed):
        rng = random.Random(seed)
        g = random_weak_digraph(rng)
        code = min_directed_dfs_code(g)
        rebuilt = digraph_from_code(code)
        assert rebuilt.num_nodes == g.num_nodes
        assert rebuilt.num_edges == g.num_edges
        assert min_directed_dfs_code(rebuilt) == code

    def test_direction_distinguishes_codes(self):
        forward = DiGraph.from_arcs([1, 2], [(0, 1, 0)])
        backward = DiGraph.from_arcs([1, 2], [(1, 0, 0)])
        assert min_directed_dfs_code(forward) != min_directed_dfs_code(backward)

    def test_disconnected_rejected(self):
        g = DiGraph.from_arcs([1, 2, 3], [(0, 1)])
        with pytest.raises(MiningError, match="weakly connected"):
            min_directed_dfs_code(g)

    def test_empty_code(self):
        assert min_directed_dfs_code(DiGraph.from_arcs([5], [])).edges == ()
        assert is_min_dicode(DirectedDFSCode(()))


class TestDirectedIsomorphism:
    def test_direction_respected(self):
        pattern = DiGraph.from_arcs([1, 2], [(0, 1, 0)])
        host_same = DiGraph.from_arcs([1, 2, 3], [(0, 1, 0), (2, 1, 0)])
        host_flip = DiGraph.from_arcs([1, 2], [(1, 0, 0)])
        assert is_directed_subgraph_isomorphic(pattern, host_same)
        assert not is_directed_subgraph_isomorphic(pattern, host_flip)

    def test_generalized(self):
        tax = taxonomy_from_parent_names({"b": "a", "x": []})
        a, b, x = (tax.id_of(n) for n in "abx")
        pattern = DiGraph.from_arcs([a, x], [(0, 1, 0)])
        host = DiGraph.from_arcs([b, x], [(0, 1, 0)])
        assert is_directed_generalized_subgraph_isomorphic(pattern, host, tax)
        assert not is_directed_generalized_subgraph_isomorphic(host, pattern, tax)
        assert is_directed_generalized_isomorphic(pattern, host, tax)

    def test_embedding_count_on_antiparallel(self):
        # Pattern a->a in host with arcs both ways: two embeddings.
        pattern = DiGraph.from_arcs([1, 1], [(0, 1, 0)])
        host = DiGraph.from_arcs([1, 1], [(0, 1, 0), (1, 0, 0)])
        assert len(list(directed_iter_embeddings(pattern, host))) == 2


class TestDirectedGSpan:
    def test_direction_separates_patterns(self):
        db = DiGraphDatabase()
        db.new_graph(["a", "b"], [(0, 1, "x")])
        db.new_graph(["a", "b"], [(0, 1, "x")])
        db.new_graph(["a", "b"], [(1, 0, "x")])
        patterns = DirectedGSpanMiner(db, min_support=0.5).mine()
        supports = sorted(p.support_count for p in patterns)
        # a->b in two graphs; b->a only in one (below threshold 2).
        assert supports == [2]

    def test_matches_directed_brute_force(self):
        rng = random.Random(3)
        for _ in range(10):
            db = DiGraphDatabase()
            for index in range(3):  # label ids 0..2 used by the generator
                db.node_labels.intern(f"l{index}")
            for _g in range(rng.randint(2, 3)):
                db.add_graph(random_weak_digraph(rng, max_nodes=4))
            sigma = 0.5
            miner = DirectedGSpanMiner(db, sigma, max_edges=2)
            min_count = miner.min_count
            mined = {p.code: p.support_set for p in miner.mine()}
            # brute force via the oracle helper's subgraph enumeration
            from repro.directed.taxogram import (
                _weakly_connected_arc_subgraphs,
            )

            expected: dict = {}
            for graph in db:
                seen = set()
                for sub in _weakly_connected_arc_subgraphs(graph, 2):
                    code = min_directed_dfs_code(sub)
                    if code in seen:
                        continue
                    seen.add(code)
                    expected.setdefault(code, set()).add(graph.graph_id)
            expected = {
                code: frozenset(gids)
                for code, gids in expected.items()
                if len(gids) >= min_count
            }
            assert mined == expected


class TestDirectedTaxogram:
    def _fixture(self):
        tax = taxonomy_from_parent_names({"b": "a", "c": "a", "x": []})
        db = DiGraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "x"], [(0, 1)])
        db.new_graph(["c", "x"], [(0, 1)])
        return db, tax

    def test_implied_directed_pattern(self):
        db, tax = self._fixture()
        result = mine_directed(db, tax, min_support=1.0)
        assert result.algorithm == "taxogram-directed"
        assert len(result) == 1
        pattern = result.patterns[0]
        names = [
            tax.name_of(pattern.graph.node_label(v))
            for v in pattern.graph.nodes()
        ]
        assert sorted(names) == ["a", "x"]
        # The arc points from the 'a' node to the 'x' node.
        (source, target, _label), = pattern.graph.arcs()
        assert tax.name_of(pattern.graph.node_label(source)) == "a"

    def test_direction_matters_for_support(self):
        tax = taxonomy_from_parent_names({"b": "a", "x": []})
        db = DiGraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "x"], [(0, 1)])
        db.new_graph(["b", "x"], [(1, 0)])  # reversed
        result = mine_directed(db, tax, min_support=1.0)
        assert len(result) == 0  # no direction-consistent common pattern

    def test_unknown_label_rejected(self):
        tax = taxonomy_from_parent_names({"b": "a"})
        db = DiGraphDatabase(node_labels=tax.interner)
        db.node_labels.intern("alien")
        db.new_graph(["alien"], [])
        with pytest.raises(TaxonomyError):
            mine_directed(db, tax)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_equals_directed_oracle(self, seed):
        rng = random.Random(seed)
        interner = LabelInterner()
        tax = make_random_taxonomy(
            rng, interner, rng.randint(3, 7),
            dag=seed % 2 == 1, multiroot=seed % 5 == 4,
        )
        labels = list(tax.labels())
        db = DiGraphDatabase(node_labels=interner)
        for _ in range(rng.randint(2, 4)):
            n = rng.randint(2, 4)
            names = [interner.name_of(rng.choice(labels)) for _ in range(n)]
            graph = db.new_graph(names, [])
            for _ in range(rng.randint(1, 5)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and not graph.has_arc(u, v):
                    graph.add_arc(u, v, 0)
        sigma = rng.choice([0.5, 1.0])
        oracle = mine_directed_with_oracle(db, tax, sigma, max_edges=2)
        result = mine_directed(db, tax, min_support=sigma, max_edges=2)
        assert result.pattern_codes() == oracle.pattern_codes()


class TestDirectedLemma2:
    """sup(P) <= sup(Pg) for every generalization Pg of a directed P."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_generalizing_never_lowers_support(self, seed):
        from repro.core.relabel import repair_taxonomy
        from repro.directed.isomorphism import directed_find_embedding
        from repro.isomorphism.matchers import GeneralizedMatcher

        rng = random.Random(seed)
        interner = LabelInterner()
        tax = make_random_taxonomy(rng, interner, rng.randint(3, 6),
                                   dag=seed % 2 == 0)
        labels = list(tax.labels())
        db = DiGraphDatabase(node_labels=interner)
        for _ in range(rng.randint(2, 3)):
            n = rng.randint(2, 4)
            names = [interner.name_of(rng.choice(labels)) for _ in range(n)]
            graph = db.new_graph(names, [])
            for _ in range(rng.randint(1, 4)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and not graph.has_arc(u, v):
                    graph.add_arc(u, v, 0)
        working, _mg = repair_taxonomy(tax)
        matcher = GeneralizedMatcher(working)
        result = mine_directed(db, tax, min_support=0.5, max_edges=2)
        for pattern in result.patterns[:8]:
            graph = pattern.graph
            for v in graph.nodes():
                for parent in working.parents_of(graph.node_label(v)):
                    generalized = graph.copy()
                    generalized.relabel_node(v, parent)
                    support = sum(
                        1
                        for g in db
                        if directed_find_embedding(generalized, g, matcher)
                        is not None
                    )
                    assert support >= pattern.support_count
