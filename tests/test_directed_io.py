"""Tests for directed graph database serialization and the CLI path."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.directed.digraph import DiGraphDatabase
from repro.directed.io import (
    parse_digraph_database,
    read_digraph_database,
    serialize_digraph_database,
    write_digraph_database,
)
from repro.exceptions import FormatError
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.taxonomy.io import write_taxonomy

SAMPLE = """
t # 0
v 0 kinase
v 1 tf
a 0 1 activates
t # 1
v 0 tf
"""


class TestParse:
    def test_parse_sample(self):
        db = parse_digraph_database(SAMPLE)
        assert len(db) == 2
        assert db[0].has_arc(0, 1)
        assert not db[0].has_arc(1, 0)
        assert db.edge_labels.name_of(db[0].arc_label(0, 1)) == "activates"

    def test_arc_without_label_gets_default(self):
        db = parse_digraph_database("t # 0\nv 0 a\nv 1 b\na 1 0\n")
        assert db.edge_labels.name_of(db[0].arc_label(1, 0)) == "-"

    def test_undirected_record_rejected(self):
        with pytest.raises(FormatError, match="undirected 'e' record"):
            parse_digraph_database("t # 0\nv 0 a\nv 1 b\ne 0 1\n")

    def test_structural_errors(self):
        with pytest.raises(FormatError, match="before any 't'"):
            parse_digraph_database("a 0 1\n")
        with pytest.raises(FormatError, match="dense"):
            parse_digraph_database("t # 0\nv 3 a\n")
        with pytest.raises(FormatError, match="unknown record"):
            parse_digraph_database("t # 0\nq x\n")
        with pytest.raises(FormatError, match="line 4"):
            parse_digraph_database("t # 0\nv 0 a\nv 1 b\na 0 0\n")


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        db = DiGraphDatabase()
        db.new_graph(["a", "b", "c"], [(0, 1, "x"), (2, 1, "y"), (1, 0, "x")])
        path = tmp_path / "db.digraphs"
        write_digraph_database(db, path)
        loaded = read_digraph_database(path)
        assert serialize_digraph_database(loaded) == serialize_digraph_database(db)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_round_trip(self, seed):
        rng = random.Random(seed)
        db = DiGraphDatabase()
        for _ in range(rng.randint(1, 3)):
            n = rng.randint(1, 4)
            graph = db.new_graph([rng.choice("abc") for _ in range(n)], [])
            for _ in range(rng.randint(0, 6)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and not graph.has_arc(u, v):
                    graph.add_arc(u, v, db.edge_labels.intern(rng.choice("xy")))
        text = serialize_digraph_database(db)
        assert serialize_digraph_database(parse_digraph_database(text)) == text


class TestDirectedCLI:
    def test_mine_directed(self, tmp_path, capsys):
        tax = taxonomy_from_parent_names({"kinase": "protein", "tf": "protein"})
        db = DiGraphDatabase(node_labels=tax.interner)
        db.new_graph(["kinase", "tf"], [(0, 1, "activates")])
        db.new_graph(["kinase", "tf"], [(0, 1, "activates")])
        db_path = tmp_path / "db.digraphs"
        tax_path = tmp_path / "tax.txt"
        write_digraph_database(db, db_path)
        write_taxonomy(tax, tax_path)
        code = main(
            ["mine", str(db_path), str(tax_path), "--directed",
             "--support", "1.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "taxogram-directed" in out
        assert "kinase->tf" in out

    def test_directed_rejects_other_algorithms(self, tmp_path, capsys):
        tax = taxonomy_from_parent_names({"b": "a"})
        tax_path = tmp_path / "t.txt"
        write_taxonomy(tax, tax_path)
        db = DiGraphDatabase(node_labels=tax.interner)
        db.new_graph(["b"], [])
        db_path = tmp_path / "d.txt"
        write_digraph_database(db, db_path)
        code = main(
            ["mine", str(db_path), str(tax_path), "--directed",
             "--algorithm", "tacgm"]
        )
        assert code == 1
        assert "only the taxogram algorithm" in capsys.readouterr().err
