"""Tests for the disk-backed occurrence index (the paper's future work)."""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.disk_index import DiskOccurrenceIndex, build_disk_occurrence_index
from repro.core.occurrence_index import build_occurrence_index
from repro.core.results import MiningCounters
from repro.core.taxogram import Taxogram, TaxogramOptions, mine
from repro.exceptions import MiningError
from repro.mining.gspan import Embedding
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.util.interner import LabelInterner
from tests.conftest import make_random_database, make_random_taxonomy


def _fixture():
    tax = taxonomy_from_parent_names({"b": "a", "c": "a", "d": "b"})
    ids = {n: tax.id_of(n) for n in "abcd"}
    originals = [[ids["d"], ids["c"]], [ids["b"], ids["c"]]]
    embeddings = [
        Embedding(0, (0, 1), frozenset()),
        Embedding(1, (0, 1), frozenset()),
        Embedding(1, (1, 0), frozenset()),
    ]
    return tax, originals, embeddings


class TestDiskIndex:
    def test_matches_memory_index(self, tmp_path):
        tax, originals, embeddings = _fixture()
        mem_store, mem_index = build_occurrence_index(
            2, embeddings, originals, tax, None, MiningCounters()
        )
        disk_store, disk_index = build_disk_occurrence_index(
            2, embeddings, originals, tax, None, MiningCounters(),
            directory=tmp_path,
        )
        try:
            assert len(disk_store) == len(mem_store)
            for position in range(2):
                assert disk_index.covered(position) == mem_index.covered(position)
                for label in mem_index.covered(position):
                    assert disk_index.bits(position, label) == mem_index.bits(
                        position, label
                    )
                    assert disk_index.covered_children(
                        position, label, tax
                    ) == mem_index.covered_children(position, label, tax)
        finally:
            disk_index.close()

    def test_spills_to_sqlite_with_tiny_staging(self, tmp_path):
        tax, originals, embeddings = _fixture()
        _store, index = build_disk_occurrence_index(
            2, embeddings, originals, tax, None, MiningCounters(),
            directory=tmp_path, max_resident_entries=1,
        )
        try:
            assert index.database_path.exists()
            assert index.database_path.stat().st_size > 0
            # Entries survive the spill/merge cycle.
            mem_store, mem_index = build_occurrence_index(
                2, embeddings, originals, tax, None, MiningCounters()
            )
            for position in range(2):
                for label in mem_index.covered(position):
                    assert index.bits(position, label) == mem_index.bits(
                        position, label
                    )
        finally:
            index.close()

    def test_uncovered_label_bits_zero(self, tmp_path):
        tax, originals, embeddings = _fixture()
        _store, index = build_disk_occurrence_index(
            2, embeddings, originals, tax, None, MiningCounters(),
            directory=tmp_path,
        )
        try:
            assert index.bits(1, tax.id_of("d")) == 0
            assert not index.is_covered(1, tax.id_of("d"))
        finally:
            index.close()

    def test_temporary_directory_cleanup(self):
        index = DiskOccurrenceIndex(1)
        path = index.database_path
        index.insert(0, 0, 1)
        index.finish()
        assert path.exists()
        index.close()
        assert not path.exists()  # temp dir removed

    def test_context_manager(self):
        with DiskOccurrenceIndex(1) as index:
            index.insert(0, 3, 0b1)
            index.finish()
            assert index.bits(0, 3) == 0b1

    def test_close_idempotent(self):
        index = DiskOccurrenceIndex(1)
        index.close()
        index.close()


class TestIncrementalMaintenance:
    def test_reopen_without_reset_preserves_rows(self, tmp_path):
        with DiskOccurrenceIndex(2, directory=tmp_path) as index:
            index.insert(0, 7, 0b101)
            index.insert(1, 9, 0b010)
            index.finish()
        with DiskOccurrenceIndex(2, directory=tmp_path, reset=False) as index:
            assert index.bits(0, 7) == 0b101
            assert index.bits(1, 9) == 0b010
            assert index.is_covered(0, 7)
            assert index.row_count() == 2

    def test_clear_bits_masks_entries(self, tmp_path):
        with DiskOccurrenceIndex(1, directory=tmp_path) as index:
            index.insert(0, 3, 0b111)
            index.insert(0, 4, 0b100)
            index.finish()
            assert index.clear_bits(0b100) == 1  # label 4 emptied
            assert index.bits(0, 3) == 0b011
            assert index.bits(0, 4) == 0

    def test_clear_bits_deletes_emptied_rows(self, tmp_path):
        # Regression: an emptied entry must disappear entirely — a stale
        # zero-bit tombstone would re-enter specialization through
        # is_covered / covered_children with an empty occurrence set.
        tax = taxonomy_from_parent_names({"b": "a"})
        with DiskOccurrenceIndex(1, directory=tmp_path) as index:
            index.insert(0, tax.id_of("b"), 0b1)
            index.finish()
            index.clear_bits(0b1)
            assert not index.is_covered(0, tax.id_of("b"))
            assert index.covered(0) == {}
            assert index.covered_children(0, tax.id_of("a"), tax) == []
            assert index.row_count() == 0

    def test_clear_bits_empty_mask_is_noop(self, tmp_path):
        with DiskOccurrenceIndex(1, directory=tmp_path) as index:
            index.insert(0, 1, 0b1)
            index.finish()
            assert index.clear_bits(0) == 0
            assert index.bits(0, 1) == 0b1

    def test_remap_bits_compacts_occurrence_ids(self, tmp_path):
        with DiskOccurrenceIndex(1, directory=tmp_path) as index:
            index.insert(0, 1, 0b1010)  # occurrences 1 and 3
            index.insert(0, 2, 0b0010)  # occurrence 1 only
            index.finish()
            index.remap_bits({1: 0, 3: 1})  # occurrence 1 -> 0, 3 -> 1
            assert index.bits(0, 1) == 0b11
            assert index.bits(0, 2) == 0b01

    def test_remap_bits_deletes_emptied_rows(self, tmp_path):
        with DiskOccurrenceIndex(1, directory=tmp_path) as index:
            index.insert(0, 1, 0b100)
            index.insert(0, 2, 0b011)
            index.finish()
            index.remap_bits({0: 0, 1: 1})  # occurrence 2 dropped
            assert not index.is_covered(0, 1)
            assert index.row_count() == 1
            assert index.bits(0, 2) == 0b011

    def test_clear_then_reopen_roundtrip(self, tmp_path):
        with DiskOccurrenceIndex(1, directory=tmp_path) as index:
            index.insert(0, 5, 0b110)
            index.finish()
            index.clear_bits(0b010)
        with DiskOccurrenceIndex(1, directory=tmp_path, reset=False) as index:
            assert index.bits(0, 5) == 0b100
            assert index.is_covered(0, 5)


class TestTaxogramDiskBackend:
    def test_identical_results_randomized(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=8, deadline=None)
        @given(st.integers(min_value=0, max_value=10_000))
        def check(seed):
            rng = random.Random(seed)
            interner = LabelInterner()
            tax = make_random_taxonomy(
                rng, interner, rng.randint(3, 7), dag=seed % 2 == 0
            )
            db = make_random_database(rng, tax, rng.randint(2, 4))
            memory = mine(db, tax, min_support=0.5, max_edges=2)
            disk = Taxogram(
                TaxogramOptions(
                    min_support=0.5,
                    max_edges=2,
                    occurrence_index_backend="disk",
                    disk_max_resident_entries=2,
                )
            ).mine(db, tax)
            assert disk.pattern_codes() == memory.pattern_codes()

        check()

    def test_identical_results(self):
        rng = random.Random(13)
        interner = LabelInterner()
        tax = make_random_taxonomy(rng, interner, 7, dag=True)
        db = make_random_database(rng, tax, 4)
        memory = mine(db, tax, min_support=0.5, max_edges=2)
        disk = Taxogram(
            TaxogramOptions(
                min_support=0.5,
                max_edges=2,
                occurrence_index_backend="disk",
                disk_max_resident_entries=4,
            )
        ).mine(db, tax)
        assert disk.pattern_codes() == memory.pattern_codes()

    def test_explicit_directory_used(self, tmp_path, go_excerpt, pathway_db):
        result = Taxogram(
            TaxogramOptions(
                min_support=1.0,
                occurrence_index_backend="disk",
                disk_index_directory=str(tmp_path),
            )
        ).mine(pathway_db, go_excerpt)
        assert result.patterns
        assert (tmp_path / "occurrence_index.sqlite3").exists()

    def test_unknown_backend_rejected(self, go_excerpt, pathway_db):
        with pytest.raises(MiningError, match="occurrence_index_backend"):
            Taxogram(
                TaxogramOptions(occurrence_index_backend="cloud")
            ).mine(pathway_db, go_excerpt)


class TestThreading:
    """Connection-sharing semantics: reads from any thread, writes only
    from the owner thread, read-only views fully immutable."""

    def _run(self, target):
        result: list[object] = []
        failure: list[BaseException] = []

        def call():
            try:
                result.append(target())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failure.append(exc)

        thread = threading.Thread(target=call)
        thread.start()
        thread.join()
        if failure:
            raise failure[0]
        return result[0]

    def test_cross_thread_read(self, tmp_path):
        # Regression: the single SQLite connection used to be created
        # with thread affinity, so a read from any other thread raised
        # sqlite3.ProgrammingError.  Readers now get a lazy per-thread
        # read-only connection.
        with DiskOccurrenceIndex(
            1, directory=tmp_path, max_resident_entries=1
        ) as index:
            index.insert(0, 3, 0b101)
            index.insert(0, 4, 0b010)
            index.finish()  # force SQLite residency
            assert self._run(lambda: index.bits(0, 3)) == 0b101
            assert set(self._run(lambda: index.covered(0))) == {3, 4}
            assert self._run(lambda: index.is_covered(0, 4))

    def test_cross_thread_mutation_rejected(self, tmp_path):
        with DiskOccurrenceIndex(1, directory=tmp_path) as index:
            index.insert(0, 3, 0b1)
            with pytest.raises(MiningError, match="thread that opened"):
                self._run(lambda: index.insert(0, 4, 0b1))
            with pytest.raises(MiningError, match="thread that opened"):
                self._run(lambda: index.clear_bits(0b1))

    def test_read_only_rejects_mutation(self, tmp_path):
        with DiskOccurrenceIndex(1, directory=tmp_path) as index:
            index.insert(0, 3, 0b11)
            index.finish()
        with DiskOccurrenceIndex(
            1, directory=tmp_path, reset=False, read_only=True
        ) as index:
            assert index.bits(0, 3) == 0b11
            with pytest.raises(MiningError, match="read-only"):
                index.insert(0, 4, 0b1)
            with pytest.raises(MiningError, match="read-only"):
                index.clear_bits(0b1)
            with pytest.raises(MiningError, match="read-only"):
                index.remap_bits({0: 0})

    def test_read_only_requires_existing_rows(self, tmp_path):
        with pytest.raises(MiningError, match="read-only"):
            DiskOccurrenceIndex(1, directory=tmp_path, read_only=True)

    def test_dump_rows_merges_staged_and_flushed(self, tmp_path):
        with DiskOccurrenceIndex(
            2, directory=tmp_path, max_resident_entries=1
        ) as index:
            index.insert(0, 3, 0b1)   # spills
            index.insert(1, 5, 0b10)  # spills
            index.insert(1, 5, 0b100)  # staged on top of a flushed row
            assert index.dump_rows() == [(0, 3, 0b1), (1, 5, 0b110)]

    def test_concurrent_read_hammer(self, tmp_path):
        rng = random.Random(11)
        rows = {
            (position, label): rng.getrandbits(30) | 1
            for position in range(3)
            for label in range(8)
        }
        with DiskOccurrenceIndex(
            3, directory=tmp_path, max_resident_entries=2
        ) as index:
            for (position, label), bits in rows.items():
                index.insert(position, label, bits)
            index.finish()

            failures: list[BaseException] = []

            def reader(seed: int) -> None:
                local = random.Random(seed)
                try:
                    for _ in range(200):
                        position = local.randrange(3)
                        label = local.randrange(8)
                        assert index.bits(position, label) == rows[
                            (position, label)
                        ]
                except BaseException as exc:  # noqa: BLE001 - recorded
                    failures.append(exc)

            threads = [
                threading.Thread(target=reader, args=(i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, failures[:1]
