"""Edge-case tests across modules: empty inputs, extremes, odd shapes."""

from __future__ import annotations

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions, mine
from repro.core.tacgm import TAcGM, TAcGMOptions
from repro.datagen.datasets import build_dataset, dataset_spec
from repro.exceptions import MiningError
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.mining.gspan import GSpanMiner
from repro.taxonomy.builders import taxonomy_from_parent_names


class TestDegenerateDatabases:
    def test_single_graph_database(self):
        tax = taxonomy_from_parent_names({"b": "a"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "b"], [(0, 1)])
        result = mine(db, tax, min_support=1.0)
        assert len(result) == 1
        assert result.patterns[0].support == 1.0

    def test_all_graphs_edgeless(self):
        tax = taxonomy_from_parent_names({"b": "a"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b"], [])
        db.new_graph(["a"], [])
        # Patterns need at least one edge, so nothing is frequent.
        assert len(mine(db, tax, min_support=0.5)) == 0
        tacgm = TAcGM(TAcGMOptions(min_support=0.5)).mine(db, tax)
        assert len(tacgm) == 0

    def test_identical_graphs(self):
        tax = taxonomy_from_parent_names({"b": "a", "c": "a"})
        db = GraphDatabase(node_labels=tax.interner)
        for _ in range(4):
            db.new_graph(["b", "c"], [(0, 1, "x")])
        result = mine(db, tax, min_support=1.0)
        # b-c survives; a-c, b-a, a-a are all over-generalized.
        assert len(result) == 1
        names = {
            tax.name_of(result.patterns[0].graph.node_label(v))
            for v in result.patterns[0].graph.nodes()
        }
        assert names == {"b", "c"}

    def test_flat_taxonomy_reduces_to_plain_mining(self):
        # A taxonomy with no hierarchy: Taxogram == gSpan + nothing to
        # generalize or eliminate.
        tax = taxonomy_from_parent_names({"p": [], "q": [], "r": []})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["p", "q"], [(0, 1, "x")])
        db.new_graph(["p", "q"], [(0, 1, "x")])
        db.new_graph(["q", "r"], [(0, 1, "x")])
        taxogram = mine(db, tax, min_support=0.5)
        plain = GSpanMiner(db, min_support=0.5).mine()
        assert {p.code for p in taxogram} == {p.code for p in plain}

    def test_deep_chain_taxonomy(self):
        # 30-level chain: relabel collapses to the root, specialization
        # walks all the way back down.
        names = {f"c{i}": f"c{i - 1}" for i in range(1, 30)}
        names["c0"] = []
        tax = taxonomy_from_parent_names(names)
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["c29", "c29"], [(0, 1)])
        db.new_graph(["c29", "c29"], [(0, 1)])
        result = mine(db, tax, min_support=1.0)
        assert len(result) == 1
        label = result.patterns[0].graph.node_label(0)
        assert tax.name_of(label) == "c29"  # deepest survives, chain dies

    def test_star_graph_automorphisms(self):
        # A 5-point star has 4! automorphisms per embedding; dedup and
        # support must stay exact.
        tax = taxonomy_from_parent_names({"hub": [], "leaf": []})
        db = GraphDatabase(node_labels=tax.interner)
        for _ in range(2):
            db.new_graph(
                ["hub", "leaf", "leaf", "leaf", "leaf"],
                [(0, i) for i in range(1, 5)],
            )
        result = mine(db, tax, min_support=1.0, max_edges=4)
        codes = [p.code for p in result]
        assert len(codes) == len(set(codes))
        by_edges = {}
        for p in result:
            by_edges.setdefault(p.num_edges, []).append(p)
        # One pattern per size: the star prefix of each size.
        assert all(len(v) == 1 for v in by_edges.values())
        assert set(by_edges) == {1, 2, 3, 4}


class TestThresholdExtremes:
    def _db(self):
        tax = taxonomy_from_parent_names({"b": "a"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "b"], [(0, 1)])
        db.new_graph(["a", "a"], [(0, 1)])
        return db, tax

    def test_minimum_possible_support(self):
        db, tax = self._db()
        result = mine(db, tax, min_support=0.0001)
        assert len(result) >= 1

    def test_support_exactly_one(self):
        db, tax = self._db()
        result = mine(db, tax, min_support=1.0)
        # Only a-a spans both graphs (b-b misses graph 1).
        assert len(result) == 1
        assert tax.name_of(result.patterns[0].graph.node_label(0)) == "a"

    def test_invalid_supports_rejected(self):
        db, tax = self._db()
        with pytest.raises(MiningError):
            mine(db, tax, min_support=0.0)
        with pytest.raises(MiningError):
            mine(db, tax, min_support=1.5)


class TestBuildDatasetOverrides:
    def test_max_edges_override(self):
        spec = dataset_spec("D1000")
        db, _tax = build_dataset(
            spec, graph_scale=0.01, taxonomy_scale=0.02, max_edges_override=5
        )
        assert all(g.num_edges <= 5 for g in db)

    def test_unknown_taxonomy_kind_rejected(self):
        from dataclasses import replace

        spec = replace(dataset_spec("D1000"), taxonomy_kind="quantum")
        with pytest.raises(MiningError, match="unknown taxonomy kind"):
            build_dataset(spec, graph_scale=0.01)


class TestLargePatternCap:
    def test_unbounded_matches_large_cap(self):
        tax = taxonomy_from_parent_names({"b": "a"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "b", "b"], [(0, 1), (1, 2)])
        db.new_graph(["b", "b", "b"], [(0, 1), (1, 2)])
        unbounded = mine(db, tax, min_support=1.0)
        capped = mine(db, tax, min_support=1.0, max_edges=10)
        assert unbounded.pattern_codes() == capped.pattern_codes()

    def test_disk_backend_on_star(self):
        tax = taxonomy_from_parent_names({"b": "a"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "b", "b", "b"], [(0, 1), (0, 2), (0, 3)])
        db.new_graph(["b", "b", "b", "b"], [(0, 1), (0, 2), (0, 3)])
        memory = mine(db, tax, min_support=1.0)
        disk = Taxogram(
            TaxogramOptions(
                min_support=1.0,
                occurrence_index_backend="disk",
                disk_max_resident_entries=1,
            )
        ).mine(db, tax)
        assert disk.pattern_codes() == memory.pattern_codes()
