"""Randomized equivalence: Taxogram == baseline == TAcGM == oracle.

These are the library's strongest correctness guarantees: on random
databases over random tree/DAG, single-/multi-root taxonomies, all three
algorithms must produce exactly the pattern set defined by the brute
force oracle (frequent, minimal, complete).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import mine_with_oracle
from repro.core.tacgm import TAcGM, TAcGMOptions
from repro.core.taxogram import mine, mine_baseline
from repro.util.interner import LabelInterner
from tests.conftest import make_random_database, make_random_taxonomy


def _random_instance(seed: int):
    rng = random.Random(seed)
    interner = LabelInterner()
    taxonomy = make_random_taxonomy(
        rng,
        interner,
        rng.randint(3, 8),
        dag=seed % 2 == 1,
        multiroot=seed % 4 == 3,
    )
    database = make_random_database(rng, taxonomy, rng.randint(2, 4))
    sigma = rng.choice([0.4, 0.5, 0.67, 1.0])
    return database, taxonomy, sigma


class TestAgainstOracle:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_taxogram_equals_oracle(self, seed):
        database, taxonomy, sigma = _random_instance(seed)
        oracle = mine_with_oracle(database, taxonomy, sigma, max_edges=2)
        result = mine(database, taxonomy, min_support=sigma, max_edges=2)
        assert result.pattern_codes() == oracle.pattern_codes()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_baseline_equals_oracle(self, seed):
        database, taxonomy, sigma = _random_instance(seed)
        oracle = mine_with_oracle(database, taxonomy, sigma, max_edges=2)
        result = mine_baseline(database, taxonomy, min_support=sigma, max_edges=2)
        assert result.pattern_codes() == oracle.pattern_codes()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_tacgm_equals_oracle(self, seed):
        database, taxonomy, sigma = _random_instance(seed)
        oracle = mine_with_oracle(database, taxonomy, sigma, max_edges=2)
        result = TAcGM(TAcGMOptions(min_support=sigma, max_edges=2)).mine(
            database, taxonomy
        )
        assert result.pattern_codes() == oracle.pattern_codes()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_three_edge_patterns(self, seed):
        database, taxonomy, sigma = _random_instance(seed)
        oracle = mine_with_oracle(database, taxonomy, sigma, max_edges=3)
        result = mine(database, taxonomy, min_support=sigma, max_edges=3)
        assert result.pattern_codes() == oracle.pattern_codes()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_support_sets_match_not_just_counts(self, seed):
        database, taxonomy, sigma = _random_instance(seed)
        oracle = mine_with_oracle(database, taxonomy, sigma, max_edges=2)
        result = mine(database, taxonomy, min_support=sigma, max_edges=2)
        oracle_map = oracle.pattern_codes()
        for pattern in result:
            assert pattern.support_set == oracle_map[pattern.code]
            assert pattern.support_count == len(pattern.support_set)
