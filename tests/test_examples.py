"""Smoke tests: every example script runs and prints sensible output."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Traditional" in out
        assert "Taxonomy-superimposed" in out
        assert "sup=1.000" in out

    def test_pathway_mining(self):
        out = run_example(
            "pathway_mining.py",
            "--organisms", "10",
            "--taxonomy-size", "200",
            "--max-edges", "2",
        )
        assert "Most conserved pathway" in out
        assert "Patterns" in out

    def test_chemical_compounds(self):
        out = run_example("chemical_compounds.py", "--molecules", "30",
                          "--max-edges", "2")
        assert "Patterns" in out
        assert "atom" in out

    def test_pattern_analysis(self):
        out = run_example("pattern_analysis.py")
        assert "Top patterns by support" in out
        assert "Label depth profile" in out
        assert "Busiest functional category" in out

    def test_directed_mining(self):
        out = run_example("directed_mining.py")
        assert "taxogram-directed" in out
        assert "kinase -> transcription_factor" in out

    def test_algorithm_comparison(self):
        out = run_example("algorithm_comparison.py", "--graphs", "12",
                          "--max-edges", "2")
        assert "taxogram" in out
        assert "tacgm" in out or "OUT OF MEMORY" in out
        assert "agree on the pattern set: True" in out
