"""Unit tests for :mod:`repro.graphs.graph`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_add_nodes_and_edges(self):
        g = Graph()
        a = g.add_node(5)
        b = g.add_node(7)
        g.add_edge(a, b, 3)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.node_label(a) == 5
        assert g.edge_label(a, b) == 3
        assert g.edge_label(b, a) == 3  # undirected

    def test_from_edges_with_and_without_labels(self):
        g = Graph.from_edges([1, 2, 3], [(0, 1), (1, 2, 9)])
        assert g.num_edges == 2
        assert g.edge_label(0, 1) == 0  # default label
        assert g.edge_label(1, 2) == 9

    def test_negative_node_label_rejected(self):
        with pytest.raises(GraphError):
            Graph().add_node(-1)

    def test_self_loop_rejected(self):
        g = Graph.from_edges([1, 2], [])
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge(0, 0)

    def test_duplicate_edge_rejected(self):
        g = Graph.from_edges([1, 2], [(0, 1)])
        with pytest.raises(GraphError, match="duplicate"):
            g.add_edge(1, 0)

    def test_unknown_node_rejected(self):
        g = Graph.from_edges([1], [])
        with pytest.raises(GraphError, match="unknown node"):
            g.add_edge(0, 5)
        with pytest.raises(GraphError):
            g.node_label(2)

    def test_negative_edge_label_rejected(self):
        g = Graph.from_edges([1, 2], [])
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -2)


class TestInspection:
    def _triangle(self) -> Graph:
        return Graph.from_edges([1, 2, 3], [(0, 1, 4), (1, 2, 5), (0, 2, 6)])

    def test_neighbors_and_degree(self):
        g = self._triangle()
        assert sorted(g.neighbors(0)) == [1, 2]
        assert g.degree(1) == 2
        assert sorted(g.neighbor_items(0)) == [(1, 4), (2, 6)]

    def test_edges_iterates_once_each(self):
        g = self._triangle()
        assert sorted(g.edges()) == [(0, 1, 4), (0, 2, 6), (1, 2, 5)]

    def test_has_edge(self):
        g = self._triangle()
        assert g.has_edge(2, 0)
        assert not g.has_edge(0, 3)  # out-of-range is just False

    def test_missing_edge_label_raises(self):
        g = Graph.from_edges([1, 2, 3], [(0, 1)])
        with pytest.raises(GraphError, match="no edge"):
            g.edge_label(0, 2)

    def test_node_labels_returns_copy(self):
        g = self._triangle()
        labels = g.node_labels()
        labels[0] = 99
        assert g.node_label(0) == 1

    def test_connectivity(self):
        assert self._triangle().is_connected()
        assert Graph().is_connected()  # empty graph
        g = Graph.from_edges([1, 2, 3], [(0, 1)])
        assert not g.is_connected()

    def test_relabel_node(self):
        g = self._triangle()
        g.relabel_node(0, 42)
        assert g.node_label(0) == 42
        with pytest.raises(GraphError):
            g.relabel_node(0, -1)


class TestEqualityAndCopy:
    def test_equality_is_exact_not_isomorphic(self):
        g1 = Graph.from_edges([1, 2], [(0, 1)])
        g2 = Graph.from_edges([1, 2], [(0, 1)])
        g3 = Graph.from_edges([2, 1], [(0, 1)])  # permuted labels
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3

    def test_copy_deep(self):
        g = Graph.from_edges([1, 2], [(0, 1)], graph_id=7)
        c = g.copy()
        c.relabel_node(0, 9)
        c.add_node(3)
        assert g.node_label(0) == 1
        assert g.num_nodes == 2
        assert c.graph_id == 7
        assert g.copy(graph_id=3).graph_id == 3

    def test_repr(self):
        assert "nodes=2" in repr(Graph.from_edges([1, 2], [(0, 1)]))
