"""Unit and round-trip tests for :mod:`repro.graphs.io`."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FormatError
from repro.graphs.database import GraphDatabase
from repro.graphs.io import (
    parse_graph_database,
    read_graph_database,
    serialize_graph_database,
    write_graph_database,
)

SAMPLE = """
# a comment
t # 0
v 0 transporter
v 1 helicase
e 0 1 binds

t # 1
v 0 carrier
"""


class TestParse:
    def test_parse_sample(self):
        db = parse_graph_database(SAMPLE)
        assert len(db) == 2
        assert db[0].num_nodes == 2
        assert db[0].num_edges == 1
        assert db.node_label_name(db[0].node_label(1)) == "helicase"
        assert db.edge_label_name(db[0].edge_label(0, 1)) == "binds"
        assert db[1].num_edges == 0

    def test_edge_without_label_gets_default(self):
        db = parse_graph_database("t # 0\nv 0 a\nv 1 b\ne 0 1\n")
        assert db.edge_label_name(db[0].edge_label(0, 1)) == "-"

    def test_vertex_before_header_rejected(self):
        with pytest.raises(FormatError, match="before any 't'"):
            parse_graph_database("v 0 a\n")

    def test_edge_before_header_rejected(self):
        with pytest.raises(FormatError, match="before any 't'"):
            parse_graph_database("e 0 1\n")

    def test_sparse_node_ids_rejected(self):
        with pytest.raises(FormatError, match="dense"):
            parse_graph_database("t # 0\nv 1 a\n")

    def test_unknown_record_rejected(self):
        with pytest.raises(FormatError, match="unknown record"):
            parse_graph_database("t # 0\nq nonsense\n")

    def test_bad_integer_rejected(self):
        with pytest.raises(FormatError, match="expected integer"):
            parse_graph_database("t # 0\nv zero a\n")

    def test_bad_edge_reported_with_line(self):
        with pytest.raises(FormatError, match="line 4"):
            parse_graph_database("t # 0\nv 0 a\nv 1 b\ne 0 0\n")

    def test_malformed_vertex_record(self):
        with pytest.raises(FormatError, match="expected 'v"):
            parse_graph_database("t # 0\nv 0\n")


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        db = GraphDatabase()
        db.new_graph(["a", "b", "c"], [(0, 1, "x"), (1, 2, "y")])
        db.new_graph(["c"], [])
        path = tmp_path / "db.graphs"
        write_graph_database(db, path)
        loaded = read_graph_database(path)
        assert serialize_graph_database(loaded) == serialize_graph_database(db)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_round_trip(self, seed):
        rng = random.Random(seed)
        db = GraphDatabase()
        for _ in range(rng.randint(1, 4)):
            n = rng.randint(1, 5)
            labels = [rng.choice("abcde") for _ in range(n)]
            edges = []
            present = set()
            for _ in range(rng.randint(0, 6)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v or (min(u, v), max(u, v)) in present:
                    continue
                present.add((min(u, v), max(u, v)))
                edges.append((u, v, rng.choice("xy")))
            db.new_graph(labels, edges)
        text = serialize_graph_database(db)
        reparsed = parse_graph_database(text)
        assert serialize_graph_database(reparsed) == text
        assert len(reparsed) == len(db)
        for original, loaded in zip(db, reparsed):
            assert original.num_nodes == loaded.num_nodes
            # Interner ids may be assigned in a different encounter order;
            # compare by name.
            original_edges = sorted(
                (u, v, db.edge_label_name(e)) for u, v, e in original.edges()
            )
            loaded_edges = sorted(
                (u, v, reparsed.edge_label_name(e)) for u, v, e in loaded.edges()
            )
            assert original_edges == loaded_edges
