"""Tests for the gSpan miner, including oracle equality."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MiningError
from repro.graphs.database import GraphDatabase
from repro.mining.brute_force import brute_force_frequent_subgraphs
from repro.mining.dfs_code import min_dfs_code
from repro.mining.gspan import GSpanMiner, min_support_count


def random_db(rng: random.Random, n_graphs: int | None = None) -> GraphDatabase:
    db = GraphDatabase()
    for _ in range(n_graphs or rng.randint(2, 4)):
        n = rng.randint(2, 5)
        labels = [rng.choice("abc") for _ in range(n)]
        edges = []
        present = set()
        for _ in range(rng.randint(1, 6)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v or (min(u, v), max(u, v)) in present:
                continue
            present.add((min(u, v), max(u, v)))
            edges.append((u, v, rng.choice("xy")))
        db.new_graph(labels, edges)
    return db


class TestMinSupportCount:
    def test_rounds_up(self):
        assert min_support_count(0.2, 10) == 2
        assert min_support_count(0.25, 10) == 3
        assert min_support_count(1.0, 7) == 7

    def test_floating_point_robustness(self):
        # 0.3 * 10 is 2.9999...96 in binary; must still be 3.
        assert min_support_count(0.3, 10) == 3

    def test_at_least_one(self):
        assert min_support_count(0.01, 5) == 1

    def test_invalid_rejected(self):
        with pytest.raises(MiningError):
            min_support_count(0.0, 10)
        with pytest.raises(MiningError):
            min_support_count(1.5, 10)


class TestMinerBasics:
    def _simple_db(self) -> GraphDatabase:
        db = GraphDatabase()
        db.new_graph(["a", "b", "c"], [(0, 1, "x"), (1, 2, "x")])
        db.new_graph(["a", "b"], [(0, 1, "x")])
        return db

    def test_patterns_have_min_codes_and_supports(self):
        db = self._simple_db()
        patterns = GSpanMiner(db, min_support=1.0).mine()
        assert len(patterns) == 1  # only a-b appears in both
        p = patterns[0]
        assert p.support_count == 2
        assert p.support_set == frozenset({0, 1})
        assert p.support(2) == 1.0
        assert p.num_edges == 1
        assert p.num_nodes == 2
        assert min_dfs_code(p.graph) == p.code

    def test_lower_support_yields_more(self):
        db = self._simple_db()
        at_half = GSpanMiner(db, min_support=0.5).mine()
        codes = {p.code for p in at_half}
        # a-b, b-c, a-b-c path
        assert len(codes) == 3

    def test_max_edges_cap(self):
        db = self._simple_db()
        patterns = GSpanMiner(db, min_support=0.5, max_edges=1).mine()
        assert all(p.num_edges == 1 for p in patterns)

    def test_empty_database_rejected(self):
        with pytest.raises(MiningError, match="empty"):
            GSpanMiner(GraphDatabase())

    def test_bad_max_edges_rejected(self):
        with pytest.raises(MiningError):
            GSpanMiner(self._simple_db(), max_edges=0)

    def test_edgeless_database_yields_nothing(self):
        db = GraphDatabase()
        db.new_graph(["a"], [])
        assert GSpanMiner(db, min_support=1.0).mine() == []

    def test_report_callback_receives_embeddings(self):
        db = self._simple_db()
        seen: list[int] = []

        def report(pattern):
            assert pattern.embeddings, "callback must see embeddings"
            for emb in pattern.embeddings:
                graph = db[emb.graph_id]
                # Embedding maps code vertices to real graph nodes with
                # matching labels.
                for code_vertex, node in enumerate(emb.nodes):
                    assert (
                        graph.node_label(node)
                        == pattern.code.vertex_labels[code_vertex]
                    )
            seen.append(pattern.support_count)

        results = GSpanMiner(db, min_support=0.5).mine(report=report)
        assert len(seen) == len(results)
        # keep_embeddings=False strips embeddings from the returned copies.
        assert all(not p.embeddings for p in results)

    def test_keep_embeddings_true(self):
        db = self._simple_db()
        results = GSpanMiner(db, min_support=0.5, keep_embeddings=True).mine()
        assert all(p.embeddings for p in results)

    def test_no_duplicate_codes(self):
        rng = random.Random(5)
        db = random_db(rng, 4)
        patterns = GSpanMiner(db, min_support=0.5, max_edges=4).mine()
        codes = [p.code for p in patterns]
        assert len(codes) == len(set(codes))


class TestOracleEquality:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        db = random_db(rng)
        sigma = rng.choice([0.5, 0.6, 1.0])
        expected = brute_force_frequent_subgraphs(db, sigma, max_edges=3)
        mined = {
            p.code: p.support_set
            for p in GSpanMiner(db, sigma, max_edges=3).mine()
        }
        assert mined == expected

    def test_support_sets_exact_on_fixed_example(self):
        db = GraphDatabase()
        db.new_graph(["a", "a"], [(0, 1, "x")])
        db.new_graph(["a", "a", "a"], [(0, 1, "x"), (1, 2, "x")])
        db.new_graph(["b"], [])
        patterns = GSpanMiner(db, min_support=0.5).mine()
        by_edges = {p.num_edges: p for p in patterns}
        assert by_edges[1].support_set == frozenset({0, 1})
        assert 2 not in by_edges  # the 2-edge path appears only in graph 1
