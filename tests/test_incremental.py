"""Unit and integration tests for :mod:`repro.incremental`.

The bit-identical equivalence of incremental updates against fresh
mining is covered by the randomized streams in ``test_differential.py``;
this module pins the subsystem's contracts: the occurrence-id space,
delta validation, store persistence + integrity checks, and the
updater's maintenance behaviors (demotion, promotion, compaction,
fallback).
"""

from __future__ import annotations

import json

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.exceptions import MiningError, StoreError, TaxonomyError
from repro.graphs.database import GraphDatabase
from repro.incremental import (
    DatabaseDelta,
    IncrementalOptions,
    IncrementalTaxogram,
    OccurrenceColumns,
    PatternStore,
    mine_to_store,
)
from repro.incremental.store import FORMAT_VERSION, taxonomy_fingerprint
from repro.taxonomy.builders import taxonomy_from_parent_names


def _flat_taxonomy():
    return taxonomy_from_parent_names({"b": "a", "c": "a"})


def _edge_db(taxonomy, edge_label_names):
    """One two-node graph per entry, distinguished by its edge label."""
    db = GraphDatabase(node_labels=taxonomy.interner)
    for name in edge_label_names:
        db.new_graph(["b", "c"], [(0, 1, name)])
    return db


def _store_case(tmp_path, edge_label_names, sigma):
    taxonomy = _flat_taxonomy()
    db = _edge_db(taxonomy, edge_label_names)
    store_dir = tmp_path / "store"
    result = Taxogram(
        TaxogramOptions(min_support=sigma, store_out=str(store_dir))
    ).mine(db, taxonomy)
    return taxonomy, db, store_dir, result


def _adds(taxonomy, edge_label_names):
    return DatabaseDelta.adding(_edge_db(taxonomy, edge_label_names))


class TestOccurrenceColumns:
    def test_append_and_duck_interface(self):
        cols = OccurrenceColumns()
        assert cols.append(0, (0, 1)) == 0
        assert cols.append(0, (1, 0)) == 1
        assert cols.append(2, (0, 1)) == 2
        assert len(cols) == 3
        assert cols.all_bits == 0b111
        assert cols.support_count(0b111) == 2
        assert cols.support_count(0b011) == 1
        assert cols.support_count(0) == 0
        assert cols.support_set(0b100) == frozenset({2})
        assert cols.support_set(0b111) == frozenset({0, 2})

    def test_clear_graphs_tombstones_columns(self):
        cols = OccurrenceColumns([(0, (0, 1)), (1, (0, 1)), (0, (1, 0))])
        cleared = cols.clear_graphs([0])
        assert cleared == 0b101
        assert cols.all_bits == 0b010
        assert cols.live_count == 1
        assert cols.dead_fraction == pytest.approx(2 / 3)
        assert cols.support_set(cols.all_bits) == frozenset({1})

    def test_clear_graphs_unknown_graph_is_noop(self):
        cols = OccurrenceColumns([(0, (0, 1))])
        assert cols.clear_graphs([7]) == 0
        assert cols.all_bits == 0b1

    def test_remap_graphs_renumbers_live_columns(self):
        cols = OccurrenceColumns([(0, (0, 1)), (2, (0, 1))])
        cols.clear_graphs([0])
        cols.remap_graphs({2: 1})
        assert cols.support_set(cols.all_bits) == frozenset({1})
        assert list(cols) == [None, (1, (0, 1))]

    def test_compaction_map_and_compact(self):
        cols = OccurrenceColumns([(0, (0, 1)), (1, (0, 1)), (2, (1, 0))])
        cols.clear_graphs([1])
        id_map = cols.compaction_map()
        assert id_map == {0: 0, 2: 1}
        cols.compact(id_map)
        assert len(cols) == 2
        assert cols.dead_fraction == 0.0
        assert cols.all_bits == 0b11
        assert cols.support_set(0b11) == frozenset({0, 2})

    def test_rows_roundtrip_preserves_tombstones(self):
        cols = OccurrenceColumns([(0, (0, 1)), (1, (1, 0))])
        cols.clear_graphs([0])
        rebuilt = OccurrenceColumns.from_rows(
            json.loads(json.dumps(cols.to_rows()))
        )
        assert list(rebuilt) == list(cols)
        assert rebuilt.all_bits == cols.all_bits
        assert rebuilt.dead_fraction == cols.dead_fraction

    def test_empty_dead_fraction_zero(self):
        assert OccurrenceColumns().dead_fraction == 0.0
        assert OccurrenceColumns().all_bits == 0


class TestDatabaseDelta:
    def test_negative_remove_id_rejected(self):
        with pytest.raises(MiningError, match="non-negative"):
            DatabaseDelta(remove_ids=(-1,))

    def test_duplicate_remove_id_rejected(self):
        with pytest.raises(MiningError, match="duplicate remove id 3"):
            DatabaseDelta(remove_ids=(3, 1, 3))

    def test_adding_counts_graphs(self):
        taxonomy = _flat_taxonomy()
        delta = _adds(taxonomy, ["x", "x", "y"])
        assert delta.added_count == 3
        assert delta.size() == 3
        assert not delta.is_empty

    def test_removing(self):
        delta = DatabaseDelta.removing([2, 0])
        assert delta.remove_ids == (2, 0)
        assert delta.added_count == 0
        assert delta.size() == 2

    def test_empty(self):
        assert DatabaseDelta().is_empty

    def test_added_database_uses_given_interners(self):
        taxonomy = _flat_taxonomy()
        delta = _adds(taxonomy, ["x"])
        db = GraphDatabase(node_labels=taxonomy.interner)
        parsed = delta.added_database(db.node_labels, db.edge_labels)
        assert len(parsed) == 1
        assert parsed.node_labels is taxonomy.interner


class TestPatternStoreRoundTrip:
    def test_mine_to_store_matches_plain_mine(self, tmp_path):
        taxonomy, db, _store_dir, result = _store_case(
            tmp_path, ["x", "x", "x", "y"], 0.5
        )
        fresh = Taxogram(TaxogramOptions(min_support=0.5)).mine(db, taxonomy)
        assert result.pattern_codes() == fresh.pattern_codes()
        assert [p.class_id for p in result.patterns] == [
            p.class_id for p in fresh.patterns
        ]

    def test_mine_to_store_requires_store_out(self):
        taxonomy = _flat_taxonomy()
        db = _edge_db(taxonomy, ["x"])
        with pytest.raises(MiningError, match="store_out"):
            mine_to_store(db, taxonomy, TaxogramOptions(min_support=0.5))

    def test_open_reproduces_state(self, tmp_path):
        taxonomy, db, store_dir, _result = _store_case(
            tmp_path, ["x", "x", "x", "y"], 0.5
        )
        store = PatternStore.open(store_dir)
        assert len(store.database) == len(db)
        assert store.min_support == 0.5
        assert store.taxonomy_sha == taxonomy_fingerprint(taxonomy)
        assert store.classes, "store persisted no classes"
        reopened = PatternStore.open(store_dir)
        assert [c.code for c in reopened.classes] == [
            c.code for c in store.classes
        ]
        assert [c.columns.to_rows() for c in reopened.classes] == [
            c.columns.to_rows() for c in store.classes
        ]
        assert {
            code: sorted(gids) for code, gids in reopened.border.items()
        } == {code: sorted(gids) for code, gids in store.border.items()}

    def test_border_holds_infrequent_edges(self, tmp_path):
        # y appears once in four graphs at sigma 0.5: minimal infrequent,
        # so the negative border must record it with its exact support.
        _taxonomy, _db, store_dir, _result = _store_case(
            tmp_path, ["x", "x", "x", "y"], 0.5
        )
        store = PatternStore.open(store_dir)
        border_gids = [sorted(gids) for gids in store.border.values()]
        assert [3] in border_gids

    def test_report_carries_store_gauges(self, tmp_path):
        _taxonomy, _db, _store_dir, result = _store_case(
            tmp_path, ["x", "x", "x", "y"], 0.5
        )
        assert result.report is not None
        assert result.report.gauges["store.classes"] >= 1
        assert "store.border_size" in result.report.gauges


class TestPatternStoreIntegrity:
    def test_open_missing_manifest(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        with pytest.raises(StoreError, match="not a pattern store"):
            PatternStore.open(empty)

    def test_open_tampered_file(self, tmp_path):
        _taxonomy, _db, store_dir, _result = _store_case(tmp_path, ["x", "x"], 0.5)
        target = store_dir / "classes.json"
        target.write_text(target.read_text() + " ", encoding="utf-8")
        with pytest.raises(StoreError, match="integrity check"):
            PatternStore.open(store_dir)

    def test_open_missing_file(self, tmp_path):
        _taxonomy, _db, store_dir, _result = _store_case(tmp_path, ["x", "x"], 0.5)
        (store_dir / "border.json").unlink()
        with pytest.raises(StoreError, match="border.json is missing"):
            PatternStore.open(store_dir)

    def test_open_wrong_format_version(self, tmp_path):
        _taxonomy, _db, store_dir, _result = _store_case(tmp_path, ["x", "x"], 0.5)
        manifest_path = store_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(StoreError, match="unsupported store format version"):
            PatternStore.open(store_dir)

    def test_open_missing_oie(self, tmp_path):
        import shutil

        _taxonomy, _db, store_dir, _result = _store_case(tmp_path, ["x", "x"], 0.5)
        store = PatternStore.open(store_dir)
        shutil.rmtree(store.oie_path(store.classes[0]))
        with pytest.raises(StoreError, match="occurrence index"):
            PatternStore.open(store_dir)

    def test_initialize_refuses_foreign_directory(self, tmp_path):
        taxonomy = _flat_taxonomy()
        db = _edge_db(taxonomy, ["x"])
        target = tmp_path / "precious"
        target.mkdir()
        (target / "thesis.tex").write_text("irreplaceable", encoding="utf-8")
        with pytest.raises(StoreError, match="refusing to overwrite"):
            PatternStore.initialize(target, db, taxonomy, 0.5, None, "_root_")
        assert (target / "thesis.tex").exists()

    def test_initialize_replaces_existing_store(self, tmp_path):
        taxonomy, db, store_dir, _result = _store_case(tmp_path, ["x", "x"], 0.5)
        store = PatternStore.initialize(store_dir, db, taxonomy, 0.5, None, "_root_")
        assert store.classes == []
        assert not (store_dir / "manifest.json").exists()

    def test_fingerprint_mismatch_reports_first_difference(self, tmp_path):
        _taxonomy, _db, store_dir, _result = _store_case(tmp_path, ["x", "x"], 0.5)
        store = PatternStore.open(store_dir)
        assert store.fingerprint_mismatch() is None
        assert store.fingerprint_mismatch(min_support=0.5) is None
        assert "min_support" in store.fingerprint_mismatch(min_support=0.9)
        assert "max_edges" in store.fingerprint_mismatch(max_edges=3)
        other = taxonomy_from_parent_names({"q": "p"})
        assert "taxonomy" in store.fingerprint_mismatch(taxonomy=other)


class TestUpdaterValidation:
    def test_remove_id_out_of_range(self, tmp_path):
        _taxonomy, _db, store_dir, _result = _store_case(tmp_path, ["x", "x"], 0.5)
        updater = IncrementalTaxogram(store_dir)
        with pytest.raises(MiningError, match="out of range"):
            updater.apply(DatabaseDelta.removing([2]))

    def test_removing_everything_rejected(self, tmp_path):
        _taxonomy, _db, store_dir, _result = _store_case(tmp_path, ["x", "x"], 0.5)
        updater = IncrementalTaxogram(store_dir)
        with pytest.raises(MiningError, match="removes every graph"):
            updater.apply(DatabaseDelta.removing([0, 1]))

    def test_unknown_add_label_rejected(self, tmp_path):
        _taxonomy, _db, store_dir, _result = _store_case(tmp_path, ["x", "x"], 0.5)
        intruder = taxonomy_from_parent_names({"weird": "stuff"})
        add_db = GraphDatabase(node_labels=intruder.interner)
        add_db.new_graph(["weird", "stuff"], [(0, 1, "x")])
        updater = IncrementalTaxogram(store_dir)
        with pytest.raises(TaxonomyError, match="not a taxonomy concept"):
            updater.apply(DatabaseDelta.adding(add_db))

    def test_empty_delta_is_noop_recompute(self, tmp_path):
        taxonomy, db, store_dir, result = _store_case(
            tmp_path, ["x", "x", "x", "y"], 0.5
        )
        updater = IncrementalTaxogram(store_dir)
        updated = updater.apply(DatabaseDelta())
        assert updated.pattern_codes() == result.pattern_codes()


class TestUpdaterMaintenance:
    def test_removal_demotes_class(self, tmp_path):
        # x supported by {0,1,2} at min_count 3; swapping one supporter
        # for a y graph keeps |D| at 4 but drops x below sigma.
        taxonomy, _db, store_dir, result = _store_case(
            tmp_path, ["x", "x", "x", "y"], 0.75
        )
        assert result.patterns, "x must start frequent"
        updater = IncrementalTaxogram(store_dir)
        updated = updater.apply(
            DatabaseDelta(add_text=_adds(taxonomy, ["y"]).add_text, remove_ids=(0,))
        )
        assert updated.report.counter("incremental.demotions") == 1
        assert not updated.patterns
        assert updater.store.classes == []
        # The demoted class is not lost: it re-enters the border.
        fresh = Taxogram(TaxogramOptions(min_support=0.75)).mine(
            updater.store.database, taxonomy
        )
        assert updated.pattern_codes() == fresh.pattern_codes()

    def test_removal_promotes_border_entry(self, tmp_path):
        # 4 x + 3 y + 1 z at sigma 0.5 (min_count 4): only x is a class.
        # Dropping the z graph and one x graph shrinks min_count to 3,
        # which promotes y out of the negative border via re-expansion.
        taxonomy, _db, store_dir, result = _store_case(
            tmp_path, ["x", "x", "x", "x", "y", "y", "y", "z"], 0.5
        )
        updater = IncrementalTaxogram(store_dir)
        updated = updater.apply(DatabaseDelta.removing([0, 7]))
        assert updated.report.counter("incremental.border_reexpansions") >= 1
        fresh = Taxogram(TaxogramOptions(min_support=0.5)).mine(
            updater.store.database, taxonomy
        )
        assert updated.pattern_codes() == fresh.pattern_codes()
        assert len(updated.pattern_codes()) > len(result.pattern_codes())

    def test_compaction_threshold_zero_forces_rewrite(self, tmp_path):
        taxonomy, _db, store_dir, _result = _store_case(
            tmp_path, ["x", "x", "x", "x"], 0.5
        )
        updater = IncrementalTaxogram(
            store_dir, IncrementalOptions(compact_dead_fraction=0.0)
        )
        updated = updater.apply(DatabaseDelta.removing([0]))
        assert updated.report.counter("incremental.compactions") >= 1
        for stored in updater.store.classes:
            assert stored.columns.dead_fraction == 0.0
        fresh = Taxogram(TaxogramOptions(min_support=0.5)).mine(
            updater.store.database, taxonomy
        )
        assert updated.pattern_codes() == fresh.pattern_codes()

    def test_high_threshold_keeps_tombstones(self, tmp_path):
        _taxonomy, _db, store_dir, _result = _store_case(
            tmp_path, ["x", "x", "x", "x"], 0.5
        )
        updater = IncrementalTaxogram(
            store_dir, IncrementalOptions(compact_dead_fraction=0.99)
        )
        updated = updater.apply(DatabaseDelta.removing([0]))
        assert updated.report.counter("incremental.compactions") == 0
        assert any(
            stored.columns.dead_fraction > 0.0
            for stored in updater.store.classes
        )

    def test_store_survives_reopen_between_updates(self, tmp_path):
        taxonomy, _db, store_dir, _result = _store_case(
            tmp_path, ["x", "x", "x", "y"], 0.5
        )
        IncrementalTaxogram(store_dir).apply(
            DatabaseDelta(add_text=_adds(taxonomy, ["x"]).add_text)
        )
        # A second updater constructed from the path picks up the saved
        # state and keeps producing fresh-equivalent results.
        updater = IncrementalTaxogram(store_dir)
        updated = updater.apply(DatabaseDelta.removing([1]))
        fresh = Taxogram(TaxogramOptions(min_support=0.5)).mine(
            updater.store.database, taxonomy
        )
        assert updated.pattern_codes() == fresh.pattern_codes()


class TestFallback:
    def test_large_delta_falls_back_to_full_remine(self, tmp_path):
        taxonomy, _db, store_dir, _result = _store_case(
            tmp_path, ["x", "x", "x", "y"], 0.5
        )
        updater = IncrementalTaxogram(
            store_dir, IncrementalOptions(full_remine_fraction=0.0)
        )
        updated = updater.apply(DatabaseDelta.removing([0]))
        assert updated.report.counter("incremental.fallbacks") == 1
        fresh = Taxogram(TaxogramOptions(min_support=0.5)).mine(
            updater.store.database, taxonomy
        )
        assert updated.pattern_codes() == fresh.pattern_codes()

    def test_fallback_store_remains_updatable(self, tmp_path):
        taxonomy, _db, store_dir, _result = _store_case(
            tmp_path, ["x", "x", "x", "y"], 0.5
        )
        updater = IncrementalTaxogram(
            store_dir, IncrementalOptions(full_remine_fraction=0.0)
        )
        updater.apply(DatabaseDelta.removing([0]))
        # The rebuilt store lives at the same path and accepts deltas.
        assert PatternStore.open(store_dir).classes is not None
        second = updater.apply(
            DatabaseDelta(add_text=_adds(taxonomy, ["x"]).add_text)
        )
        assert second.report.counter("incremental.fallbacks") == 1

    def test_mass_addition_falls_back(self, tmp_path):
        # n_added >= min_count_new would let adds alone mint frequent
        # patterns the border cannot see; the guard must force a remine.
        taxonomy, _db, store_dir, _result = _store_case(
            tmp_path, ["x", "x", "x", "y"], 0.5
        )
        updater = IncrementalTaxogram(
            store_dir, IncrementalOptions(full_remine_fraction=10.0)
        )
        updated = updater.apply(
            DatabaseDelta(add_text=_adds(taxonomy, ["z", "z", "z", "z"]).add_text)
        )
        assert updated.report.counter("incremental.fallbacks") == 1
        fresh = Taxogram(TaxogramOptions(min_support=0.5)).mine(
            updater.store.database, taxonomy
        )
        assert updated.pattern_codes() == fresh.pattern_codes()


class TestParallelStoreBuild:
    def test_parallel_store_matches_sequential(self, tmp_path):
        taxonomy = _flat_taxonomy()
        db = _edge_db(taxonomy, ["x", "x", "x", "y", "x", "y", "y", "z"])
        seq_dir = tmp_path / "seq"
        par_dir = tmp_path / "par"
        seq = Taxogram(
            TaxogramOptions(min_support=0.5, store_out=str(seq_dir))
        ).mine(db, taxonomy)
        par = Taxogram(
            TaxogramOptions(min_support=0.5, workers=2, store_out=str(par_dir))
        ).mine(db, taxonomy)
        assert par.pattern_codes() == seq.pattern_codes()
        seq_store = PatternStore.open(seq_dir)
        par_store = PatternStore.open(par_dir)
        assert [c.code for c in par_store.classes] == [
            c.code for c in seq_store.classes
        ]
        assert [c.columns.to_rows() for c in par_store.classes] == [
            c.columns.to_rows() for c in seq_store.classes
        ]
        assert {
            code: sorted(gids) for code, gids in par_store.border.items()
        } == {code: sorted(gids) for code, gids in seq_store.border.items()}

    def test_parallel_store_accepts_deltas(self, tmp_path):
        taxonomy = _flat_taxonomy()
        db = _edge_db(taxonomy, ["x", "x", "x", "y", "x", "y", "y", "z"])
        store_dir = tmp_path / "store"
        Taxogram(
            TaxogramOptions(min_support=0.5, workers=2, store_out=str(store_dir))
        ).mine(db, taxonomy)
        updater = IncrementalTaxogram(store_dir)
        updated = updater.apply(DatabaseDelta.removing([7]))
        fresh = Taxogram(TaxogramOptions(min_support=0.5)).mine(
            updater.store.database, taxonomy
        )
        assert updated.pattern_codes() == fresh.pattern_codes()
