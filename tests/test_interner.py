"""Unit tests for :mod:`repro.util.interner`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.interner import LabelInterner


class TestIntern:
    def test_ids_are_dense_and_stable(self):
        interner = LabelInterner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0  # repeated intern returns same id
        assert len(interner) == 2

    def test_constructor_interns_in_order(self):
        interner = LabelInterner(["x", "y", "x"])
        assert interner.id_of("x") == 0
        assert interner.id_of("y") == 1
        assert len(interner) == 2

    def test_id_of_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown label"):
            LabelInterner().id_of("missing")

    def test_name_of_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown label id"):
            LabelInterner().name_of(0)

    def test_contains_and_iter(self):
        interner = LabelInterner(["a", "b"])
        assert "a" in interner
        assert "z" not in interner
        assert list(interner) == ["a", "b"]
        assert interner.names() == ["a", "b"]

    def test_copy_is_independent(self):
        original = LabelInterner(["a"])
        copy = original.copy()
        copy.intern("b")
        assert "b" not in original
        assert copy.id_of("a") == original.id_of("a")

    @given(st.lists(st.text(min_size=1, max_size=8), max_size=30))
    def test_roundtrip(self, labels):
        interner = LabelInterner()
        ids = [interner.intern(label) for label in labels]
        for label, label_id in zip(labels, ids):
            assert interner.name_of(label_id) == label
            assert interner.id_of(label) == label_id
        assert len(interner) == len(set(labels))
