"""Tests for the networkx bridges."""

from __future__ import annotations

import pytest

networkx = pytest.importorskip("networkx")

from repro.core.taxogram import mine
from repro.exceptions import GraphError
from repro.graphs.database import GraphDatabase
from repro.interop.nx import (
    graph_from_networkx,
    graph_to_networkx,
    pattern_to_networkx,
    taxonomy_to_networkx,
)
from repro.taxonomy.builders import taxonomy_from_parent_names


class TestGraphConversion:
    def test_to_networkx_with_names(self):
        db = GraphDatabase()
        g = db.new_graph(["a", "b"], [(0, 1, "x")])
        nx_graph = graph_to_networkx(g, db.node_labels, db.edge_labels)
        assert nx_graph.number_of_nodes() == 2
        assert nx_graph.nodes[0]["label"] == "a"
        assert nx_graph.edges[0, 1]["label"] == "x"
        assert nx_graph.graph["graph_id"] == g.graph_id

    def test_to_networkx_raw_ids(self):
        db = GraphDatabase()
        g = db.new_graph(["a"], [])
        nx_graph = graph_to_networkx(g)
        assert nx_graph.nodes[0]["label"] == g.node_label(0)

    def test_round_trip(self):
        db = GraphDatabase()
        g = db.new_graph(["a", "b", "c"], [(0, 1, "x"), (1, 2, "y")])
        nx_graph = graph_to_networkx(g, db.node_labels, db.edge_labels)
        db2 = GraphDatabase()
        back = graph_from_networkx(nx_graph, db2)
        assert back.num_nodes == 3
        assert back.num_edges == 2
        assert [db2.node_label_name(l) for l in back.node_labels()] == [
            "a", "b", "c",
        ]
        assert back.graph_id == 0  # registered in db2

    def test_from_networkx_rejects_directed(self):
        db = GraphDatabase()
        with pytest.raises(GraphError, match="directed"):
            graph_from_networkx(networkx.DiGraph(), db)

    def test_from_networkx_requires_labels(self):
        db = GraphDatabase()
        nx_graph = networkx.Graph()
        nx_graph.add_node(0)
        with pytest.raises(GraphError, match="label"):
            graph_from_networkx(nx_graph, db)

    def test_from_networkx_arbitrary_node_ids(self):
        db = GraphDatabase()
        nx_graph = networkx.Graph()
        nx_graph.add_node("enzyme-1", label="a")
        nx_graph.add_node("enzyme-2", label="b")
        nx_graph.add_edge("enzyme-1", "enzyme-2", label="binds")
        back = graph_from_networkx(nx_graph, db)
        assert back.num_edges == 1


class TestDiGraphConversion:
    def test_direction_preserved(self):
        from repro.directed.digraph import DiGraphDatabase
        from repro.interop.nx import digraph_to_networkx

        db = DiGraphDatabase()
        g = db.new_graph(["kinase", "tf"], [(0, 1, "activates")])
        nx_graph = digraph_to_networkx(g, db.node_labels, db.edge_labels)
        assert nx_graph.is_directed()
        assert nx_graph.has_edge(0, 1)
        assert not nx_graph.has_edge(1, 0)
        assert nx_graph.edges[0, 1]["label"] == "activates"
        assert nx_graph.nodes[0]["label"] == "kinase"


class TestPatternAndTaxonomy:
    def test_pattern_conversion_carries_support(self):
        tax = taxonomy_from_parent_names({"b": "a"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "b"], [(0, 1)])
        result = mine(db, tax, min_support=1.0)
        nx_pattern = pattern_to_networkx(
            result.patterns[0], tax.interner, db.edge_labels
        )
        assert nx_pattern.graph["support"] == 1.0
        assert nx_pattern.graph["support_count"] == 1

    def test_taxonomy_conversion(self, go_excerpt):
        nx_tax = taxonomy_to_networkx(go_excerpt)
        assert nx_tax.is_directed()
        assert nx_tax.has_edge("carrier", "transporter")  # child -> parent
        assert nx_tax.nodes["molecular_function"]["depth"] == 0
        assert nx_tax.nodes["protein_carrier"]["depth"] == 3
        # Acyclic, as a taxonomy must be.
        assert networkx.is_directed_acyclic_graph(nx_tax)
