"""Tests for VF2-style (generalized) subgraph isomorphism."""

from __future__ import annotations

import random
from itertools import permutations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.isomorphism.matchers import ExactMatcher, GeneralizedMatcher
from repro.isomorphism.vf2 import (
    count_embeddings,
    find_embedding,
    is_generalized_isomorphic,
    is_generalized_subgraph_isomorphic,
    is_subgraph_isomorphic,
    iter_embeddings,
)
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.util.interner import LabelInterner
from tests.conftest import make_random_taxonomy


def _tax():
    return taxonomy_from_parent_names(
        {"root": [], "a": "root", "b": "root", "a1": "a", "a2": "a", "b1": "b"}
    )


class TestMatchers:
    def test_exact(self):
        m = ExactMatcher()
        assert m.matches(1, 1)
        assert not m.matches(1, 2)

    def test_generalized(self):
        tax = _tax()
        m = GeneralizedMatcher(tax)
        root, a, a1, b1 = (tax.id_of(n) for n in ("root", "a", "a1", "b1"))
        assert m.matches(a, a1)  # ancestor matches descendant
        assert m.matches(a1, a1)
        assert not m.matches(a1, a)  # descendant does not match ancestor
        assert not m.matches(a, b1)
        assert m.matches(root, b1)

    def test_generalized_labels_outside_taxonomy(self):
        tax = _tax()
        interner = tax.interner
        foreign = interner.intern("not_in_taxonomy")
        m = GeneralizedMatcher(tax)
        assert m.matches(foreign, foreign)  # equality still works
        assert not m.matches(foreign, tax.id_of("a1"))
        assert not m.matches(tax.id_of("a"), foreign)


class TestExactSubgraphIso:
    def test_edge_in_triangle(self):
        pattern = Graph.from_edges([1, 2], [(0, 1, 7)])
        triangle = Graph.from_edges([1, 2, 3], [(0, 1, 7), (1, 2, 7), (0, 2, 7)])
        assert is_subgraph_isomorphic(pattern, triangle)

    def test_edge_label_must_match(self):
        pattern = Graph.from_edges([1, 2], [(0, 1, 7)])
        host = Graph.from_edges([1, 2], [(0, 1, 8)])
        assert not is_subgraph_isomorphic(pattern, host)

    def test_non_induced_semantics(self):
        # A 3-path embeds into a triangle (extra host edge allowed).
        path = Graph.from_edges([1, 1, 1], [(0, 1), (1, 2)])
        triangle = Graph.from_edges([1, 1, 1], [(0, 1), (1, 2), (0, 2)])
        assert is_subgraph_isomorphic(path, triangle)

    def test_pattern_larger_than_host(self):
        pattern = Graph.from_edges([1, 1, 1], [(0, 1), (1, 2)])
        host = Graph.from_edges([1, 1], [(0, 1)])
        assert not is_subgraph_isomorphic(pattern, host)

    def test_empty_pattern_has_one_embedding(self):
        host = Graph.from_edges([1], [])
        assert list(iter_embeddings(Graph(), host)) == [()]

    def test_count_embeddings_automorphisms(self):
        # Symmetric edge a-a in a single a-a host edge: 2 embeddings.
        pattern = Graph.from_edges([1, 1], [(0, 1)])
        host = Graph.from_edges([1, 1], [(0, 1)])
        assert count_embeddings(pattern, host) == 2

    def test_disconnected_pattern(self):
        pattern = Graph.from_edges([1, 2], [])
        host = Graph.from_edges([2, 1, 3], [(0, 1)])
        embedding = find_embedding(pattern, host)
        assert embedding is not None
        assert host.node_label(embedding[0]) == 1
        assert host.node_label(embedding[1]) == 2


class TestGeneralizedSubgraphIso:
    def test_paper_semantics(self):
        tax = _tax()
        pattern = Graph.from_edges([tax.id_of("a"), tax.id_of("b")], [(0, 1)])
        host = Graph.from_edges([tax.id_of("a1"), tax.id_of("b1")], [(0, 1)])
        assert is_generalized_subgraph_isomorphic(pattern, host, tax)
        # The reverse is not true: specific labels do not match general ones.
        assert not is_generalized_subgraph_isomorphic(host, pattern, tax)

    def test_strict_structure_isomorphism(self):
        tax = _tax()
        a, a1 = tax.id_of("a"), tax.id_of("a1")
        pattern = Graph.from_edges([a, a], [(0, 1)])
        host_path = Graph.from_edges([a1, a1, a1], [(0, 1), (1, 2)])
        host_edge = Graph.from_edges([a1, a1], [(0, 1)])
        assert is_generalized_isomorphic(pattern, host_edge, tax)
        assert not is_generalized_isomorphic(pattern, host_path, tax)  # sizes

    def test_strict_structure_rejects_extra_edges(self):
        tax = _tax()
        a, a1 = tax.id_of("a"), tax.id_of("a1")
        path = Graph.from_edges([a, a, a], [(0, 1), (1, 2)])
        triangle = Graph.from_edges([a1, a1, a1], [(0, 1), (1, 2), (0, 2)])
        assert not is_generalized_isomorphic(path, triangle, tax)
        assert is_generalized_isomorphic(
            path, triangle, tax, strict_structure=False
        )


class TestAgainstBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_embeddings_match_permutation_search(self, seed):
        rng = random.Random(seed)
        tax = make_random_taxonomy(rng, LabelInterner(), rng.randint(3, 6), dag=True)
        labels = list(tax.labels())

        def random_graph(n_max):
            n = rng.randint(1, n_max)
            g = Graph()
            for _ in range(n):
                g.add_node(rng.choice(labels))
            present = set()
            for _ in range(rng.randint(0, 2 * n)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v or (min(u, v), max(u, v)) in present:
                    continue
                present.add((min(u, v), max(u, v)))
                g.add_edge(u, v, rng.randrange(2))
            return g

        pattern = random_graph(3)
        host = random_graph(5)
        matcher = GeneralizedMatcher(tax)
        found = set(iter_embeddings(pattern, host, matcher))

        expected = set()
        host_nodes = list(host.nodes())
        if pattern.num_nodes <= host.num_nodes:
            for perm in permutations(host_nodes, pattern.num_nodes):
                ok = True
                for p in pattern.nodes():
                    if not matcher.matches(
                        pattern.node_label(p), host.node_label(perm[p])
                    ):
                        ok = False
                        break
                if ok:
                    for u, v, e in pattern.edges():
                        if (
                            not host.has_edge(perm[u], perm[v])
                            or host.edge_label(perm[u], perm[v]) != e
                        ):
                            ok = False
                            break
                if ok:
                    expected.add(tuple(perm))
        assert found == expected
