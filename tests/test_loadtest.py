"""Unit tests for the load harness itself.

The chaos suite trusts the harness's bookkeeping, so that bookkeeping
gets its own tests: plan determinism (same seed, same schedule),
outcome classification, report math (latency histograms, acked-seq
watermark, version-regression detection), and envelope judgement —
all without subprocesses.  One in-process
:class:`~repro.serving.aserver.AsyncHTTPFront` with canned endpoints
stands in for the real service where a live socket is needed.
"""

from __future__ import annotations

import pytest

from repro.loadtest.harness import (
    Envelope,
    LoadReport,
    LoadRunner,
    RequestOutcome,
    classify,
)
from repro.loadtest.workload import (
    LoadOptions,
    WorkloadMix,
    build_plan,
)
from repro.serving.aserver import AsyncHTTPFront
from repro.serving.endpoints import Endpoint, RouteTable

ADD_ONE = "t # 0\nv 0 b\nv 1 c\ne 0 1 x\n"


class TestWorkloadPlan:
    def test_same_seed_same_plan(self):
        options = LoadOptions(duration_seconds=3.0, rate=80.0, seed=17)
        first = build_plan(options, [ADD_ONE], [ADD_ONE])
        second = build_plan(options, [ADD_ONE], [ADD_ONE])
        assert first == second
        assert len(first) > 100

    def test_different_seeds_differ(self):
        base = LoadOptions(duration_seconds=3.0, rate=80.0, seed=1)
        other = LoadOptions(duration_seconds=3.0, rate=80.0, seed=2)
        assert build_plan(base, [], [ADD_ONE]) != build_plan(
            other, [], [ADD_ONE]
        )

    def test_arrivals_sorted_and_inside_window(self):
        options = LoadOptions(duration_seconds=2.0, rate=100.0, seed=5)
        plan = build_plan(options, [], [ADD_ONE])
        times = [r.at for r in plan]
        assert times == sorted(times)
        assert all(0.0 < t < 2.0 for t in times)

    def test_mix_respected_roughly(self):
        options = LoadOptions(
            duration_seconds=20.0,
            rate=100.0,
            seed=3,
            mix=WorkloadMix(50, 50, 0),
        )
        plan = build_plan(options, [], [ADD_ONE])
        kinds = [r.kind for r in plan]
        assert not any(k == "flush" for k in kinds)
        ingest_share = kinds.count("ingest") / len(kinds)
        assert 0.4 < ingest_share < 0.6

    def test_no_add_texts_degrades_to_query_only(self):
        options = LoadOptions(duration_seconds=2.0, rate=100.0, seed=5)
        plan = build_plan(options, [ADD_ONE], [])
        assert all(r.kind == "query" for r in plan)

    def test_mix_parse(self):
        mix = WorkloadMix.parse("80:15:5")
        assert mix.weights() == (80.0, 15.0, 5.0)
        with pytest.raises(ValueError):
            WorkloadMix.parse("80:15")
        with pytest.raises(ValueError):
            WorkloadMix.parse("a:b:c")
        with pytest.raises(ValueError):
            WorkloadMix(0, 0, 0)

    def test_options_validated(self):
        with pytest.raises(ValueError):
            LoadOptions(duration_seconds=0)
        with pytest.raises(ValueError):
            LoadOptions(rate=-1)
        with pytest.raises(ValueError):
            LoadOptions(wait_fraction=2.0)


class TestScenarioPlan:
    MENU = ["kill_applier", "stall_fsync", "wal_damage"]

    def test_same_seed_same_scenarios(self):
        from repro.loadtest.faults import seeded_scenario_plan

        first = seeded_scenario_plan(12, 6.0, self.MENU)
        second = seeded_scenario_plan(12, 6.0, self.MENU)
        assert first == second

    def test_draws_kinds_from_the_menu(self):
        from repro.loadtest.faults import seeded_scenario_plan

        seen = set()
        for seed in range(1, 60):
            plan = seeded_scenario_plan(seed, 6.0, self.MENU)
            assert 1 <= len(plan) <= 2
            for _at, kind in plan:
                assert kind in self.MENU
                seen.add(kind)
        # Across seeds the whole menu gets exercised.
        assert seen == set(self.MENU)

    def test_times_sorted_spaced_and_inside_margin(self):
        from repro.loadtest.faults import seeded_scenario_plan

        for seed in range(1, 40):
            plan = seeded_scenario_plan(
                seed, 10.0, self.MENU, count=2, min_gap=1.2
            )
            times = [at for at, _kind in plan]
            assert times == sorted(times)
            assert times[0] >= 10.0 * 0.2
            assert times[1] - times[0] >= 1.2 - 1e-9

    def test_count_override(self):
        from repro.loadtest.faults import seeded_scenario_plan

        plan = seeded_scenario_plan(3, 6.0, self.MENU, count=4)
        assert len(plan) == 4


class TestAppendTornFrame:
    def test_appends_junk_header_to_newest_segment(self, tmp_path):
        import struct

        from repro.loadtest.faults import append_torn_frame

        old = tmp_path / "wal-000.seg"
        new = tmp_path / "wal-001.seg"
        old.write_bytes(b"older")
        new.write_bytes(b"acked-frames")
        touched = append_torn_frame(tmp_path)
        assert touched == new
        assert old.read_bytes() == b"older"  # acked bytes untouched
        tail = new.read_bytes()
        assert tail.startswith(b"acked-frames")
        assert tail[len(b"acked-frames"):] == (
            struct.pack(">I", 0x00FFFFFF) + b"torn"
        )

    def test_no_segments_is_an_error(self, tmp_path):
        from repro.loadtest.faults import append_torn_frame

        with pytest.raises(FileNotFoundError):
            append_torn_frame(tmp_path)


class TestClassify:
    @pytest.mark.parametrize(
        ("status", "timed_out", "expected"),
        [
            (200, False, "ok"),
            (202, False, "ok"),
            (429, False, "shed"),
            (400, False, "rejected"),
            (404, False, "rejected"),
            (500, False, "server_error"),
            (503, False, "server_error"),
            (504, False, "server_error"),
            (None, False, "transport"),
            (None, True, "timeout"),
        ],
    )
    def test_classes(self, status, timed_out, expected):
        assert classify(status, timed_out) == expected


def _outcome(**kwargs) -> RequestOutcome:
    defaults = dict(
        worker=0,
        at=0.0,
        kind="query",
        op="top",
        status=200,
        outcome="ok",
        latency_seconds=0.01,
    )
    defaults.update(kwargs)
    return RequestOutcome(**defaults)


class TestLoadReport:
    def test_acked_watermark(self):
        report = LoadReport(
            [
                _outcome(kind="ingest", op="ingest", status=202,
                         acked_seq=4),
                _outcome(kind="ingest", op="ingest", status=202,
                         acked_seq=9),
                _outcome(kind="ingest", op="ingest", status=429,
                         outcome="shed"),
            ],
            wall_seconds=1.0,
        )
        assert report.acked_seqs == [4, 9]
        assert report.max_acked_seq == 9

    def test_version_regression_detected_per_worker(self):
        report = LoadReport(
            [
                _outcome(worker=0, at=0.1, store_version=5),
                _outcome(worker=1, at=0.2, store_version=9),
                _outcome(worker=0, at=0.3, store_version=4),
            ],
            wall_seconds=1.0,
        )
        regressions = report.version_regressions()
        assert len(regressions) == 1
        assert "worker 0" in regressions[0]
        # Worker 1 seeing a lower version than worker 0 is fine —
        # monotonicity is per client connection.
        clean = LoadReport(
            [
                _outcome(worker=0, at=0.1, store_version=9),
                _outcome(worker=1, at=0.2, store_version=5),
            ],
            wall_seconds=1.0,
        )
        assert clean.version_regressions() == []

    def test_counts_and_throughput(self):
        report = LoadReport(
            [
                _outcome(),
                _outcome(status=429, outcome="shed"),
                _outcome(status=None, outcome="transport"),
            ],
            wall_seconds=2.0,
        )
        assert report.total == 3
        assert report.completed == 1
        assert report.throughput == pytest.approx(0.5)
        assert report.fraction("shed") == pytest.approx(1 / 3)
        doc = report.as_dict()
        assert doc["statuses"] == {"200": 1, "429": 1}
        assert doc["latency"]["query"]["count"] == 3

    def test_json_roundtrip(self, tmp_path):
        import json

        report = LoadReport([_outcome()], wall_seconds=1.0)
        path = tmp_path / "report.json"
        report.write_json(path)
        assert json.loads(path.read_text())["total"] == 1


class TestEnvelope:
    def test_sheds_allowed_errors_not(self):
        shed_heavy = LoadReport(
            [_outcome(status=429, outcome="shed")] * 9 + [_outcome()],
            wall_seconds=1.0,
        )
        assert Envelope().violations(shed_heavy) == []
        with_errors = LoadReport(
            [_outcome(status=500, outcome="server_error")]
            + [_outcome()] * 9,
            wall_seconds=1.0,
        )
        violations = Envelope().violations(with_errors)
        assert len(violations) == 1
        assert "server_error" in violations[0]
        with pytest.raises(AssertionError):
            Envelope().check(with_errors)

    def test_transport_budget_for_chaos(self):
        flaky = LoadReport(
            [_outcome(status=None, outcome="transport")] * 3
            + [_outcome()] * 7,
            wall_seconds=1.0,
        )
        assert Envelope().violations(flaky)
        assert Envelope(max_transport_fraction=0.5).violations(
            flaky
        ) == []


class TestLoadRunnerLive:
    """One short plan against an in-process canned service."""

    @pytest.fixture
    def front(self):
        versions = iter(range(100, 1000))
        seqs = iter(range(1000))

        def top(request):
            return 200, {"op": "top_k", "store_version": next(versions),
                         "value": []}, {}

        def ingest(request):
            return 202, {"seq": next(seqs), "applied": False}, {}

        def flush(request):
            return 200, {"applied_seq": 0}, {}

        routes = RouteTable([
            Endpoint("GET", "/top", "top", "query", top),
            Endpoint("POST", "/ingest", "ingest", "ingest", ingest),
            Endpoint("POST", "/flush", "flush", "control", flush),
        ])
        front = AsyncHTTPFront(routes)
        host, port = front.start_background()
        try:
            yield f"http://{host}:{port}"
        finally:
            front.stop_background()

    def test_every_planned_request_is_accounted(self, front):
        options = LoadOptions(
            duration_seconds=1.0, rate=60.0, seed=2, workers=4
        )
        plan = build_plan(options, [], [ADD_ONE])
        report = LoadRunner(front, plan, workers=4).run()
        assert report.total == len(plan)
        assert report.counts["ok"] == len(plan)
        ingests = [r for r in plan if r.kind == "ingest"]
        assert len(report.acked_seqs) == len(ingests)
        assert report.version_regressions() == []
