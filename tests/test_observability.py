"""Unit tests for :mod:`repro.observability` itself.

Covers the subsystem's own contracts — span nesting, counter merge
across process boundaries, the disabled-mode no-op guarantees, and JSON
round-tripping — independent of the mining pipeline that consumes it.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.results import MiningCounters
from repro.observability import (
    NOOP_TRACER,
    NULL_SPAN,
    MetricsRegistry,
    PhaseClock,
    RunReport,
    SpanRecord,
    Tracer,
    peak_rss_kb,
)


class TestSpanNesting:
    def test_nested_spans_form_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        root = tracer.root
        assert list(root.children) == ["outer"]
        outer = root.children["outer"]
        assert outer.count == 1
        assert list(outer.children) == ["inner"]
        assert outer.children["inner"].count == 2

    def test_reentry_accumulates_one_record(self):
        # Re-entering a phase under the same parent accumulates into the
        # existing record: report size tracks phase structure, not the
        # number of pattern classes.
        tracer = Tracer()
        for _ in range(100):
            with tracer.span("phase"):
                pass
        assert len(tracer.root.children) == 1
        record = tracer.root.children["phase"]
        assert record.count == 100
        assert record.wall_seconds >= 0.0
        assert record.cpu_seconds >= 0.0

    def test_same_name_at_different_depths_is_distinct(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("a"):
                pass
        top = tracer.root.children["a"]
        assert top.count == 1
        assert top.children["a"].count == 1

    def test_depth_tracks_open_spans(self):
        tracer = Tracer()
        assert tracer.depth == 0
        with tracer.span("a"):
            assert tracer.depth == 1
            with tracer.span("b"):
                assert tracer.depth == 2
        assert tracer.depth == 0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("explodes"):
                raise ValueError("boom")
        assert tracer.depth == 0
        assert tracer.root.children["explodes"].count == 1

    def test_record_span_attributes_under_open_span(self):
        tracer = Tracer()
        with tracer.span("gspan.extend"):
            tracer.record_span("parallel.shard[0]", 0.5, 0.4, 1024)
            tracer.record_span("parallel.shard[0]", 0.25, 0.2, 2048)
        shard = tracer.root.children["gspan.extend"].children[
            "parallel.shard[0]"
        ]
        assert shard.count == 2
        assert shard.wall_seconds == pytest.approx(0.75)
        assert shard.cpu_seconds == pytest.approx(0.6)
        assert shard.peak_rss_kb == 2048  # max, not sum

    def test_walk_is_deterministic_preorder(self):
        tracer = Tracer()
        with tracer.span("b"):
            pass
        with tracer.span("a"):
            with tracer.span("z"):
                pass
        names = [record.name for _depth, record in tracer.root.walk()]
        assert names == ["run", "a", "z", "b"]

    def test_span_record_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.record_span("child", 1.5, 1.0, 512, count=3)
        data = json.loads(json.dumps(tracer.root.as_dict()))
        restored = SpanRecord.from_dict(data)
        assert restored.as_dict() == tracer.root.as_dict()


class TestDisabledMode:
    def test_disabled_span_is_shared_singleton(self):
        # Zero allocation when disabled: every call returns the same
        # module-level null span.
        assert NOOP_TRACER.span("a") is NULL_SPAN
        assert NOOP_TRACER.span("b") is NULL_SPAN
        assert Tracer(enabled=False).span("x") is NULL_SPAN

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("phase"):
            pass
        tracer.record_span("external", 1.0, 1.0, 999)
        assert tracer.root.children == {}
        assert tracer.depth == 0

    def test_null_span_reusable_and_reentrant(self):
        with NULL_SPAN:
            with NULL_SPAN:
                pass
        with NULL_SPAN:
            pass  # no state to corrupt

    def test_noop_tracer_never_appears_in_reports(self):
        report = RunReport.from_run(
            "taxogram", MiningCounters(), tracer=NOOP_TRACER
        )
        assert report.spans is None


def _count_in_worker(n: int) -> MiningCounters:
    """Module-level so ProcessPoolExecutor can pickle it."""
    counters = MiningCounters()
    for _ in range(n):
        counters.isomorphism_tests += 1
        counters.gspan_candidates_generated += 2
    return counters


class TestCrossProcessMerge:
    def test_counters_merge_across_process_boundary(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            shards = list(pool.map(_count_in_worker, [3, 5]))
        merged = MiningCounters()
        for shard in shards:
            merged.merge(shard)
        assert merged.isomorphism_tests == 8
        assert merged.gspan_candidates_generated == 16

    def test_counters_survive_pickling(self):
        import pickle

        counters = MiningCounters()
        counters.oie_entries = 7
        counters.candidates_pruned = 3
        clone = pickle.loads(pickle.dumps(counters))
        assert clone.as_metrics() == counters.as_metrics()

    def test_registry_counters_sum_gauges_max(self):
        a = MetricsRegistry({"work": 3}, {"peak": 10.0, "only_a": 1.0})
        b = MetricsRegistry({"work": 4, "extra": 1}, {"peak": 7.0})
        a.merge(b)
        assert a.counters == {"work": 7, "extra": 1}
        assert a.gauges == {"peak": 10.0, "only_a": 1.0}

    def test_registry_round_trip_and_equality(self):
        registry = MetricsRegistry()
        registry.add("parallel.shards", 2)
        registry.set_gauge("parallel.shard[0].patterns", 5)
        registry.max_gauge("parallel.shard[0].patterns", 3)  # keeps 5
        clone = MetricsRegistry.from_dict(
            json.loads(json.dumps(registry.as_dict()))
        )
        assert clone == registry
        assert clone.gauges["parallel.shard[0].patterns"] == 5.0


class TestPhaseClock:
    def test_measures_nonnegative_and_accumulates(self):
        clock = PhaseClock()
        with clock:
            sum(range(1000))
        first = clock.wall_seconds
        assert first >= 0.0
        assert clock.cpu_seconds >= 0.0
        with clock:
            pass
        assert clock.wall_seconds >= first

    def test_peak_rss_positive_on_posix(self):
        rss = peak_rss_kb()
        assert rss >= 0
        clock = PhaseClock()
        with clock:
            pass
        assert clock.peak_rss_kb == pytest.approx(rss, rel=0.5)


class TestRunReport:
    def _sample(self) -> RunReport:
        tracer = Tracer()
        with tracer.span("relabel"):
            pass
        with tracer.span("gspan.extend"):
            tracer.record_span("parallel.shard[0]", 0.1, 0.1, 100)
        counters = MiningCounters()
        counters.isomorphism_tests = 42
        metrics = MetricsRegistry({"parallel.shards": 2}, {"db.graphs": 4.0})
        return RunReport.from_run(
            "taxogram",
            counters,
            stage_seconds={"mine": 0.5, "relabel": 0.1},
            tracer=tracer,
            metrics=metrics,
        )

    def test_json_round_trip_exact(self):
        report = self._sample()
        restored = RunReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.to_json() == report.to_json()

    def test_json_keys_sorted(self):
        data = json.loads(self._sample().to_json())
        assert list(data) == sorted(data)
        assert list(data["counters"]) == sorted(data["counters"])

    def test_counter_absent_reads_zero(self):
        report = self._sample()
        assert report.counter("iso.tests") == 42
        assert report.counter("never.touched") == 0

    def test_diff_counters_cross_feature_sets(self):
        a = self._sample()
        b = RunReport(algorithm="taxogram", counters={"iso.tests": 40})
        deltas = a.diff_counters(b)
        assert deltas["iso.tests"] == (42, 40)
        assert deltas["parallel.shards"] == (2, 0)
        assert "counter deltas" in RunReport.render_diff("a", "b", deltas)
        assert "agree" in RunReport.render_diff("a", "b", {})

    def test_render_mentions_all_sections(self):
        text = self._sample().render()
        assert "counters:" in text
        assert "gauges:" in text
        assert "stages:" in text
        assert "spans:" in text
        assert "parallel.shard[0]" in text

    def test_render_marks_every_volatile_value(self):
        # Golden-file contract: every duration carries "ms", every RSS
        # figure carries "KB", so tooling can normalize them away.
        import re

        text = self._sample().render()
        for line in text.splitlines():
            for match in re.finditer(r"(wall|cpu)=(\S+)", line):
                assert match.group(2).endswith("ms")
            for match in re.finditer(r"rss=(\S+)", line):
                assert match.group(1).endswith("KB")
