"""Tests for occurrence stores and taxonomy-projected occurrence indices."""

from __future__ import annotations

from repro.core.occurrence_index import (
    OccurrenceStore,
    build_occurrence_index,
    generalized_label_supports,
)
from repro.core.results import MiningCounters
from repro.graphs.database import GraphDatabase
from repro.mining.gspan import Embedding
from repro.taxonomy.builders import taxonomy_from_parent_names


class TestOccurrenceStore:
    def test_add_and_masks(self):
        store = OccurrenceStore()
        assert store.add(0, (1, 2)) == 0
        assert store.add(0, (2, 1)) == 1
        assert store.add(3, (0, 1)) == 2
        assert len(store) == 3
        assert store.all_bits == 0b111

    def test_support_counts_distinct_graphs(self):
        store = OccurrenceStore()
        store.add(0, (1,))
        store.add(0, (2,))
        store.add(1, (1,))
        assert store.support_count(0b011) == 1  # both occurrences in graph 0
        assert store.support_count(0b101) == 2
        assert store.support_count(0b000) == 0
        assert store.support_count(store.all_bits) == 2

    def test_support_set(self):
        store = OccurrenceStore()
        store.add(4, (1,))
        store.add(9, (1,))
        assert store.support_set(0b01) == frozenset({4})
        assert store.support_set(0b11) == frozenset({4, 9})

    def test_occurrence_ids_paper_notation(self):
        store = OccurrenceStore()
        store.add(1, (0,))
        store.add(1, (1,))
        store.add(2, (0,))
        assert store.occurrence_ids(0b111) == ["G1.1", "G1.2", "G2.1"]


def _tax():
    return taxonomy_from_parent_names(
        {"a": [], "b": "a", "c": "a", "d": "b"}
    )


class TestBuildOccurrenceIndex:
    def test_projection_covers_ancestors(self):
        tax = _tax()
        a, b, c, d = (tax.id_of(n) for n in "abcd")
        originals = [[d, c]]
        embeddings = [Embedding(0, (0, 1), frozenset())]
        counters = MiningCounters()
        store, index = build_occurrence_index(
            2, embeddings, originals, tax, None, counters
        )
        assert len(store) == 1
        # Position 0 saw original d -> covers d, b, a.
        assert set(index.covered(0)) == {d, b, a}
        # Position 1 saw original c -> covers c, a.
        assert set(index.covered(1)) == {c, a}
        assert index.bits(0, d) == 0b1
        assert index.bits(1, c) == 0b1
        assert index.bits(0, c) == 0  # uncovered labels yield empty sets
        assert counters.occurrence_index_updates == 5

    def test_multiple_occurrences_accumulate_bits(self):
        tax = _tax()
        a, b, c, d = (tax.id_of(n) for n in "abcd")
        originals = [[b, c], [d, d]]
        embeddings = [
            Embedding(0, (0, 1), frozenset()),
            Embedding(1, (0, 1), frozenset()),
            Embedding(1, (1, 0), frozenset()),
        ]
        store, index = build_occurrence_index(
            2, embeddings, originals, tax, None, MiningCounters()
        )
        assert index.bits(0, a) == 0b111
        assert index.bits(0, b) == 0b111  # b covers b and d originals
        assert index.bits(0, c) == 0  # c never appears at position 0
        assert index.bits(0, d) == 0b110
        assert index.bits(1, c) == 0b001
        assert index.bits(1, d) == 0b110

    def test_allowed_labels_filter(self):
        tax = _tax()
        a, b, c, d = (tax.id_of(n) for n in "abcd")
        originals = [[d]]
        embeddings = [Embedding(0, (0,), frozenset())]
        store, index = build_occurrence_index(
            1, embeddings, originals, tax,
            allowed_labels=frozenset({a, b}),
            counters=MiningCounters(),
        )
        assert set(index.covered(0)) == {a, b}  # d filtered out

    def test_covered_children_follow_taxonomy(self):
        tax = _tax()
        a, b, c, d = (tax.id_of(n) for n in "abcd")
        originals = [[d]]
        embeddings = [Embedding(0, (0,), frozenset())]
        _store, index = build_occurrence_index(
            1, embeddings, originals, tax, None, MiningCounters()
        )
        assert index.covered_children(0, a, tax) == [b]  # c uncovered
        assert index.covered_children(0, b, tax) == [d]
        assert index.covered_children(0, d, tax) == []
        assert index.is_covered(0, b)
        assert not index.is_covered(0, c)
        assert index.num_positions == 1


class TestGeneralizedLabelSupports:
    def test_counts_distinct_graphs_via_ancestors(self):
        tax = _tax()
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["d", "d"], [(0, 1)])
        db.new_graph(["c"], [])
        db.new_graph(["b"], [])
        supports = generalized_label_supports(db, tax)
        assert supports[tax.id_of("a")] == 3
        assert supports[tax.id_of("b")] == 2  # graphs 0 (via d) and 2
        assert supports[tax.id_of("c")] == 1
        assert supports[tax.id_of("d")] == 1
