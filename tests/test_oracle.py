"""Tests for the brute-force taxonomy-superimposed oracle itself."""

from __future__ import annotations

from repro.core.oracle import mine_with_oracle
from repro.graphs.database import GraphDatabase
from repro.taxonomy.builders import taxonomy_from_parent_names


def _fixture():
    tax = taxonomy_from_parent_names({"b": "a", "c": "a", "x": []})
    db = GraphDatabase(node_labels=tax.interner)
    db.new_graph(["b", "x"], [(0, 1)])
    db.new_graph(["c", "x"], [(0, 1)])
    return db, tax


class TestOracle:
    def test_finds_implied_pattern(self):
        db, tax = _fixture()
        result = mine_with_oracle(db, tax, min_support=1.0, max_edges=2)
        assert len(result) == 1
        pattern = result.patterns[0]
        names = {
            tax.name_of(pattern.graph.node_label(v))
            for v in pattern.graph.nodes()
        }
        assert names == {"a", "x"}
        assert pattern.support == 1.0

    def test_threshold_respected(self):
        db, tax = _fixture()
        result = mine_with_oracle(db, tax, min_support=0.5, max_edges=2)
        assert all(p.support >= 0.5 for p in result)
        # At sigma=0.5, b-x and c-x are frequent and minimal; a-x is kept
        # too (support 1.0 exceeds both specializations' 0.5).
        rendered = {
            frozenset(
                tax.name_of(p.graph.node_label(v)) for v in p.graph.nodes()
            )
            for p in result
        }
        assert rendered == {
            frozenset({"a", "x"}),
            frozenset({"b", "x"}),
            frozenset({"c", "x"}),
        }

    def test_max_edges_cap(self):
        tax = taxonomy_from_parent_names({"b": "a"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "b", "b"], [(0, 1), (1, 2)])
        result = mine_with_oracle(db, tax, min_support=1.0, max_edges=1)
        assert all(p.num_edges == 1 for p in result)

    def test_algorithm_label(self):
        db, tax = _fixture()
        assert mine_with_oracle(db, tax, 1.0, 1).algorithm == "oracle"

    def test_multiroot_artificial_labels_allowed(self):
        tax = taxonomy_from_parent_names({"m": ["r1", "r2"], "y": "r1"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["m", "m"], [(0, 1)])
        db.new_graph(["y", "y"], [(0, 1)])
        result = mine_with_oracle(db, tax, min_support=1.0, max_edges=1)
        # r1 generalizes both m and y; <root>-<root> is over-generalized
        # by r1-r1 (same support), and neither child of r1 keeps support 1.
        assert len(result) == 1
        names = {
            tax.interner.name_of(result.patterns[0].graph.node_label(v))
            for v in result.patterns[0].graph.nodes()
        }
        assert names == {"r1"}

    def test_multiroot_artificial_root_survives_when_minimal(self):
        tax = taxonomy_from_parent_names({"m": ["r1", "r2"], "y": "r2"})
        db = GraphDatabase(node_labels=tax.interner)
        # m sits under both roots; r1 alone covers only m, r2 covers both.
        db.new_graph(["m", "m"], [(0, 1)])
        db.new_graph(["y", "y"], [(0, 1)])
        db.new_graph(["r1", "r1"], [(0, 1)])
        result = mine_with_oracle(db, tax, min_support=1.0, max_edges=1)
        assert len(result) == 1
        names = {
            tax.interner.name_of(result.patterns[0].graph.node_label(v))
            for v in result.patterns[0].graph.nodes()
        }
        assert names == {"<root>"}
