"""Package-level API surface tests."""

from __future__ import annotations

import subprocess
import sys

import repro


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_from_docstring(self):
        # The module docstring's quickstart must actually work.
        taxonomy = repro.taxonomy_from_parent_names(
            {
                "transporter": "molecular_function",
                "carrier": "transporter",
                "helicase": "catalytic_activity",
                "catalytic_activity": "molecular_function",
                "molecular_function": [],
            }
        )
        db = repro.GraphDatabase(node_labels=taxonomy.interner)
        db.new_graph(["carrier", "helicase"], [(0, 1)])
        db.new_graph(["transporter", "helicase"], [(0, 1)])
        result = repro.mine(db, taxonomy, min_support=1.0)
        assert len(result) == 1
        names = {
            taxonomy.name_of(result.patterns[0].graph.node_label(v))
            for v in result.patterns[0].graph.nodes()
        }
        assert names == {"transporter", "helicase"}

    def test_serving_exports(self):
        # The serving surface is re-exported at the top level...
        import repro.serving

        for name in ("StoreReader", "ServingAnswer", "BatchExecutor", "Query"):
            assert name in repro.__all__, name
            assert getattr(repro, name) is getattr(repro.serving, name)
        # ...and repro.serving.__all__ is complete and resolvable.
        for name in repro.serving.__all__:
            assert hasattr(repro.serving, name), name
        public = {
            name for name in dir(repro.serving) if not name.startswith("_")
        }
        modules = {
            "admission", "aserver", "batch", "cache", "endpoints",
            "reader", "server",
        }
        assert public - modules == set(repro.serving.__all__)

    def test_incremental_exports_fence_state(self):
        import repro.incremental

        assert "fence_state" in repro.incremental.__all__
        assert callable(repro.incremental.fence_state)

    def test_python_dash_m_entrypoint(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "datasets"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "D1000" in result.stdout


class TestExceptions:
    def test_hierarchy(self):
        for cls in (
            repro.GraphError,
            repro.TaxonomyError,
            repro.FormatError,
            repro.MiningError,
            repro.MemoryBudgetExceeded,
        ):
            assert issubclass(cls, repro.ReproError)

    def test_memory_budget_message(self):
        exc = repro.MemoryBudgetExceeded(150, 100)
        assert "150" in str(exc)
        assert "100" in str(exc)
        assert "memory budget exceeded" in str(exc)
        assert exc.used == 150
        assert exc.budget == 100

    def test_memory_budget_custom_detail(self):
        exc = repro.MemoryBudgetExceeded(5, 1, "level storage")
        assert "level storage" in str(exc)
        assert "memory budget exceeded" in str(exc)
