"""Worked examples following the paper's figures and definitions.

Where the paper's figures are fully recoverable from the text (the
Figure 1.1 GO excerpt, the support/over-generalization definitions of
§2), these tests pin the implementation to hand-computed values.
"""

from __future__ import annotations

from repro.core.relabel import relabel_database
from repro.core.taxogram import mine
from repro.graphs.database import GraphDatabase
from repro.isomorphism.vf2 import (
    is_generalized_isomorphic,
    is_generalized_subgraph_isomorphic,
)
from repro.graphs.graph import Graph
from repro.mining.gspan import GSpanMiner
from repro.taxonomy.builders import taxonomy_from_parent_names


class TestExample11MotivatingScenario:
    """Example 1.1: traditional mining finds nothing, Taxogram does."""

    def test_traditional_mining_finds_nothing(self, go_excerpt, pathway_db):
        assert GSpanMiner(pathway_db, min_support=1.0).mine() == []

    def test_taxogram_finds_implied_patterns(self, go_excerpt, pathway_db):
        result = mine(pathway_db, go_excerpt, min_support=1.0)
        assert len(result) > 0


class TestSection2Definitions:
    """Generalized (subgraph) isomorphism per Definitions in §2."""

    def _tax(self):
        return taxonomy_from_parent_names(
            {"g": "d", "h": [], "d": "c", "c": "b", "b": "a", "a": []}
        )

    def test_is_gen_iso_not_commutative(self):
        tax = self._tax()
        general = Graph.from_edges([tax.id_of("c")], [])
        specific = Graph.from_edges([tax.id_of("g")], [])
        # Single-node graphs: c generalizes g but not vice versa.
        assert tax.is_ancestor_or_self(tax.id_of("c"), tax.id_of("g"))
        assert not tax.is_ancestor_or_self(tax.id_of("g"), tax.id_of("c"))

    def test_is_gen_iso_transitive(self):
        tax = self._tax()
        top = Graph.from_edges([tax.id_of("b"), tax.id_of("h")], [(0, 1)])
        mid = Graph.from_edges([tax.id_of("c"), tax.id_of("h")], [(0, 1)])
        bottom = Graph.from_edges([tax.id_of("g"), tax.id_of("h")], [(0, 1)])
        assert is_generalized_isomorphic(top, mid, tax)
        assert is_generalized_isomorphic(mid, bottom, tax)
        assert is_generalized_isomorphic(top, bottom, tax)  # transitivity

    def test_generalized_subgraph_isomorphism(self):
        tax = self._tax()
        # GB = (a, h) is generalized subgraph isomorphic to GA = g-h-d.
        ga = Graph.from_edges(
            [tax.id_of("g"), tax.id_of("h"), tax.id_of("d")],
            [(0, 1), (1, 2)],
        )
        gb = Graph.from_edges([tax.id_of("a"), tax.id_of("h")], [(0, 1)])
        assert is_generalized_subgraph_isomorphic(gb, ga, tax)
        assert not is_generalized_subgraph_isomorphic(ga, gb, tax)


class TestSupportDefinition:
    """sup(G) counts distinct graphs, not occurrences (§2)."""

    def test_multiple_occurrences_count_once(self):
        tax = taxonomy_from_parent_names({"b": "a", "x": []})
        db = GraphDatabase(node_labels=tax.interner)
        # Graph 0 contains the pattern twice; graph 1 not at all.
        db.new_graph(["b", "x", "b"], [(0, 1), (1, 2)])
        db.new_graph(["x", "x"], [(0, 1)])
        result = mine(db, tax, min_support=0.5)
        for pattern in result:
            assert pattern.support in (0.5, 1.0)
        target = [
            p
            for p in result
            if {tax.name_of(p.graph.node_label(v)) for v in p.graph.nodes()}
            == {"b", "x"}
        ]
        assert target and target[0].support == 0.5  # one graph, not two


class TestStep1Example31:
    """Example 3.1: relabeling to most general ancestors."""

    def test_relabeled_database_shape(self):
        tax = taxonomy_from_parent_names(
            {"b": "a", "c": "a", "d": "b", "f": "c", "g": "b", "w": "c"}
        )
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["d", "f"], [(0, 1)])
        db.new_graph(["g", "b", "c"], [(0, 1), (1, 2)])
        db.new_graph(["w", "c"], [(0, 1)])
        relabeled = relabel_database(db, tax)
        a = tax.id_of("a")
        for graph in relabeled.dmg:
            assert set(graph.node_labels()) == {a}
        # Originals retained "in parentheses".
        assert relabeled.original_labels[0] == [tax.id_of("d"), tax.id_of("f")]


class TestExample36SupportComputation:
    """Example 3.6-style numbers: specializing one node recomputes support
    through occurrence-set intersection (2/3 in the paper's example)."""

    def test_two_thirds_support(self):
        tax = taxonomy_from_parent_names({"b": "a", "c": "a"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "c"], [(0, 1)])
        db.new_graph(["b", "c"], [(0, 1)])
        db.new_graph(["c", "c"], [(0, 1)])
        result = mine(db, tax, min_support=0.5)
        by_names = {
            tuple(
                sorted(
                    tax.name_of(p.graph.node_label(v))
                    for v in p.graph.nodes()
                )
            ): p.support
            for p in result
        }
        assert by_names[("b", "c")] == 2 / 3


class TestLemma1GeneralizedPatternCount:
    """Lemma 1: the number of generalizations of P is exponential in |P|."""

    def test_counting(self):
        tax = taxonomy_from_parent_names({"b": "a", "c": "b"})
        c = tax.id_of("c")
        pattern = Graph.from_edges([c, c], [(0, 1)])
        ancestor_choices = [
            len(tax.ancestors_or_self(pattern.node_label(v)))
            for v in pattern.nodes()
        ]
        total_assignments = 1
        for n in ancestor_choices:
            total_assignments *= n
        assert total_assignments == 9  # 3 ancestors per node, d^n growth
