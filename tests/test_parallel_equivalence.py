"""Sequential vs parallel Taxogram equivalence (the tentpole guarantee).

``TaxogramOptions(workers=N)`` must be indistinguishable from a
sequential run: same patterns, same supports and support sets, same
class ids, same work counters — across random datasets, shard counts,
both occurrence-index backends, DAG and multi-root taxonomies, and the
baseline (no-enhancements) configuration.
"""

from __future__ import annotations

import random

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions, mine
from repro.exceptions import MiningError
from repro.parallel.runtime import ParallelTaxogram
from repro.util.interner import LabelInterner
from tests.conftest import make_random_database, make_random_taxonomy


def _dataset(seed: int, dag: bool = False, multiroot: bool = False):
    rng = random.Random(seed)
    interner = LabelInterner()
    taxonomy = make_random_taxonomy(
        rng, interner, rng.randint(4, 9), dag=dag, multiroot=multiroot
    )
    database = make_random_database(rng, taxonomy, rng.randint(4, 8))
    return database, taxonomy


def _assert_identical(sequential, parallel):
    assert parallel.pattern_codes() == sequential.pattern_codes()
    seq = sequential.patterns
    par = parallel.patterns
    assert [p.code for p in par] == [p.code for p in seq]
    assert [p.support_count for p in par] == [p.support_count for p in seq]
    assert [p.support for p in par] == [p.support for p in seq]
    assert [p.support_set for p in par] == [p.support_set for p in seq]
    assert [p.class_id for p in par] == [p.class_id for p in seq]
    assert [p.graph for p in par] == [p.graph for p in seq]
    a, b = sequential.counters, parallel.counters
    assert b.pattern_classes == a.pattern_classes
    assert b.embedding_extensions == a.embedding_extensions
    assert b.occurrence_index_updates == a.occurrence_index_updates
    assert b.bitset_intersections == a.bitset_intersections
    assert b.candidates_enumerated == a.candidates_enumerated
    assert b.overgeneralized_eliminated == a.overgeneralized_eliminated
    assert parallel.algorithm == sequential.algorithm
    assert parallel.database_size == sequential.database_size


def _run_pair(database, taxonomy, workers, **option_overrides):
    sequential = Taxogram(
        TaxogramOptions(min_support=0.5, max_edges=3, **option_overrides)
    ).mine(database, taxonomy)
    parallel = Taxogram(
        TaxogramOptions(
            min_support=0.5, max_edges=3, workers=workers, **option_overrides
        )
    ).mine(database, taxonomy)
    return sequential, parallel


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_memory_backend(self, workers):
        for seed in range(5):
            database, taxonomy = _dataset(seed, dag=seed % 2 == 0)
            sequential, parallel = _run_pair(database, taxonomy, workers)
            _assert_identical(sequential, parallel)
            assert sequential.patterns or parallel.patterns == []

    @pytest.mark.parametrize("workers", [2, 4])
    def test_disk_backend(self, workers):
        for seed in range(3):
            database, taxonomy = _dataset(seed, dag=True)
            sequential, parallel = _run_pair(
                database,
                taxonomy,
                workers,
                occurrence_index_backend="disk",
                disk_max_resident_entries=2,
            )
            _assert_identical(sequential, parallel)

    def test_multiroot_taxonomy(self):
        # Multi-root repair interns artificial roots; workers must see
        # the same post-repair interner state.
        for seed in range(4):
            database, taxonomy = _dataset(seed, dag=True, multiroot=True)
            sequential, parallel = _run_pair(database, taxonomy, 3)
            _assert_identical(sequential, parallel)

    def test_baseline_options(self):
        database, taxonomy = _dataset(7, dag=True)
        sequential = Taxogram(
            TaxogramOptions.baseline(min_support=0.5, max_edges=3)
        ).mine(database, taxonomy)
        from dataclasses import replace

        parallel = Taxogram(
            replace(
                TaxogramOptions.baseline(min_support=0.5, max_edges=3),
                workers=3,
            )
        ).mine(database, taxonomy)
        _assert_identical(sequential, parallel)
        assert parallel.algorithm == "baseline"

    def test_figure_pathways(self, go_excerpt, pathway_db):
        sequential = mine(pathway_db, go_excerpt, min_support=1.0)
        parallel = mine(pathway_db, go_excerpt, min_support=1.0, workers=2)
        _assert_identical(sequential, parallel)

    def test_stage_and_worker_timings_recorded(self):
        database, taxonomy = _dataset(2)
        _sequential, parallel = _run_pair(database, taxonomy, 2)
        for stage in ("relabel", "shard", "mine_classes", "merge", "specialize"):
            assert stage in parallel.stage_seconds
        for phase in ("mine", "project", "specialize"):
            assert phase in parallel.worker_seconds
            assert parallel.worker_seconds[phase] >= 0.0


class TestDegradation:
    def test_workers_one_stays_sequential(self):
        database, taxonomy = _dataset(0)
        result = Taxogram(
            TaxogramOptions(min_support=0.5, max_edges=3, workers=1)
        ).mine(database, taxonomy)
        assert result.worker_seconds == {}

    def test_more_workers_than_graphs_caps_shards(self):
        database, taxonomy = _dataset(1)
        sequential, parallel = _run_pair(database, taxonomy, 64)
        _assert_identical(sequential, parallel)

    def test_degenerate_threshold_falls_back(self):
        # min_count == 1 would force a local threshold of 1 on every
        # shard (exhaustive enumeration); the shard-count cap must send
        # such runs down the sequential path instead.
        database, taxonomy = _dataset(3)
        result = Taxogram(
            TaxogramOptions(min_support=0.01, max_edges=3, workers=4)
        ).mine(database, taxonomy)
        sequential = Taxogram(
            TaxogramOptions(min_support=0.01, max_edges=3)
        ).mine(database, taxonomy)
        _assert_identical(sequential, result)
        assert result.worker_seconds == {}  # sequential fallback

    def test_single_graph_database_falls_back(self, go_excerpt):
        from repro.graphs.database import GraphDatabase

        db = GraphDatabase(node_labels=go_excerpt.interner)
        db.new_graph(["carrier", "helicase"], [(0, 1, "i")])
        result = mine(db, go_excerpt, min_support=1.0, workers=4)
        assert result.patterns
        assert result.worker_seconds == {}  # sequential fallback

    def test_invalid_workers_rejected(self):
        database, taxonomy = _dataset(0)
        with pytest.raises(MiningError, match="workers"):
            Taxogram(
                TaxogramOptions(min_support=0.5, workers=0)
            ).mine(database, taxonomy)
        with pytest.raises(MiningError, match="workers"):
            ParallelTaxogram(
                TaxogramOptions(min_support=0.5, workers=-2)
            ).mine(database, taxonomy)

    def test_broken_pool_falls_back(self, monkeypatch):
        import repro.parallel.runtime as runtime_module

        class _ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(
            runtime_module, "ProcessPoolExecutor", _ExplodingPool
        )
        # min_support=1.0 keeps min_count == |D|, well above the shard
        # cap, so the run genuinely reaches pool creation.
        database, taxonomy = _dataset(0)
        with pytest.warns(RuntimeWarning, match="sequentially"):
            result = mine(database, taxonomy, min_support=1.0, workers=2)
        sequential = mine(database, taxonomy, min_support=1.0)
        assert result.pattern_codes() == sequential.pattern_codes()
