"""Tests for :mod:`repro.parallel.merge`.

The central property: per-shard occurrence state, re-based and merged,
equals the state a single global build would produce — for every pattern
class, on both regular and DAG taxonomies.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.occurrence_index import build_occurrence_index
from repro.core.relabel import relabel_database
from repro.core.results import MiningCounters
from repro.exceptions import MiningError
from repro.graphs.database import GraphDatabase
from repro.mining.dfs_code import DFSCode, code_lt
from repro.mining.gspan import GSpanMiner
from repro.mining.projection import project_code
from repro.parallel.merge import (
    merge_support_sets,
    ClassFragment,
    merge_class_fragments,
    merge_label_supports,
    union_candidate_codes,
)
from repro.parallel.sharding import shard_database
from repro.util.interner import LabelInterner
from tests.conftest import make_random_database, make_random_taxonomy


def _mined_setup(seed: int, dag: bool):
    rng = random.Random(seed)
    interner = LabelInterner()
    taxonomy = make_random_taxonomy(rng, interner, rng.randint(4, 8), dag=dag)
    db = make_random_database(rng, taxonomy, rng.randint(3, 6))
    relabeled = relabel_database(db, taxonomy)
    miner = GSpanMiner(
        relabeled.dmg, min_support=0.4, max_edges=3, keep_embeddings=True
    )
    return db, relabeled, miner.mine()


def _slice_fragments(db, relabeled, code, num_shards):
    """Worker-equivalent fragments via copy-based database slices."""
    manifest = shard_database(db, num_shards)
    fragments = []
    for shard in manifest.shards:
        local_dmg = GraphDatabase(db.node_labels, db.edge_labels)
        originals = []
        for graph in relabeled.dmg.graphs[shard.start : shard.stop]:
            local_dmg.add_graph(graph.copy())
            originals.append(relabeled.original_labels[graph.graph_id])
        embeddings = project_code(local_dmg, code)
        counters = MiningCounters()
        store, index = build_occurrence_index(
            code.num_vertices,
            embeddings,
            originals,
            relabeled.taxonomy,
            None,
            counters,
        )
        fragments.append(
            ClassFragment(
                shard_id=shard.shard_id,
                code=code.edges,
                occurrences=tuple(store.occurrences),
                entries=index.entries,
                index_updates=counters.occurrence_index_updates,
            )
        )
    return manifest, fragments


class TestMergeClassFragments:
    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    @pytest.mark.parametrize("dag", [False, True])
    def test_merged_state_equals_global_build(self, num_shards, dag):
        for seed in range(4):
            db, relabeled, patterns = _mined_setup(seed, dag)
            if len(db) < num_shards:
                continue
            assert patterns, f"seed {seed} produced no classes"
            for pattern in patterns:
                counters = MiningCounters()
                store, index = build_occurrence_index(
                    pattern.code.num_vertices,
                    pattern.embeddings,
                    relabeled.original_labels,
                    relabeled.taxonomy,
                    None,
                    counters,
                )
                manifest, fragments = _slice_fragments(
                    db, relabeled, pattern.code, num_shards
                )
                merged = merge_class_fragments(
                    fragments, [s.start for s in manifest.shards]
                )
                assert merged.occurrences == tuple(store.occurrences)
                assert merged.entries == index.entries
                assert merged.index_updates == counters.occurrence_index_updates
                assert merged.support_set == pattern.support_set
                assert merged.support_count == pattern.support_count
                assert merged.embedding_count == len(pattern.embeddings)

    def test_empty_fragment_list_rejected(self):
        with pytest.raises(MiningError, match="empty"):
            merge_class_fragments([], [])

    def test_out_of_order_fragments_rejected(self):
        fragment = ClassFragment(1, ((0, 1, 0, 0, 0),), (), ({},), 0)
        with pytest.raises(MiningError, match="shard order"):
            merge_class_fragments([fragment], [0, 2])

    def test_mismatched_codes_rejected(self):
        a = ClassFragment(0, ((0, 1, 0, 0, 0),), (), ({},), 0)
        b = ClassFragment(1, ((0, 1, 0, 0, 1),), (), ({},), 0)
        with pytest.raises(MiningError, match="different classes"):
            merge_class_fragments([a, b], [0, 2])


class TestMergeLabelSupports:
    def test_sums_per_label(self):
        merged = merge_label_supports([{1: 2, 2: 1}, {2: 3, 5: 1}, {}])
        assert merged == {1: 2, 2: 4, 5: 1}

    def test_partitioned_shards_sum_to_global(self):
        from repro.core.occurrence_index import generalized_label_supports

        db, relabeled, _patterns = _mined_setup(3, dag=True)
        whole = generalized_label_supports(db, relabeled.taxonomy)
        manifest = shard_database(db, 2)
        per_shard = []
        for shard in manifest.shards:
            part = GraphDatabase(db.node_labels, db.edge_labels)
            for graph in db.graphs[shard.start : shard.stop]:
                part.add_graph(graph.copy())
            per_shard.append(
                generalized_label_supports(part, relabeled.taxonomy)
            )
        assert merge_label_supports(per_shard) == whole


class TestUnionCandidateCodes:
    def test_dedupes_and_sorts_lexicographically(self):
        db, relabeled, patterns = _mined_setup(1, dag=False)
        codes = [p.code.edges for p in patterns]
        # The miner reports in DFS preorder == lexicographic order; a
        # scrambled, duplicated union must restore exactly that order.
        shuffled = list(reversed(codes)) + codes[: len(codes) // 2]
        merged = union_candidate_codes([shuffled, codes])
        assert merged == codes
        for earlier, later in zip(merged, merged[1:]):
            assert code_lt(earlier, later)

    def test_empty_union(self):
        assert union_candidate_codes([[], []]) == []


class TestMergeSupportSets:
    """Properties of the shifted-OR used by the replication router.

    The router merges per-shard graph-id answers with exactly this
    re-basing, so these properties are what make sharded ``support`` /
    ``graphs`` answers exact.
    """

    @staticmethod
    def _partition(rng: random.Random, total: int, shards: int):
        """Random contiguous partition: per-shard local ids + starts."""
        cuts = sorted(rng.randint(0, total) for _ in range(shards - 1))
        bounds = [0, *cuts, total]
        starts, per_shard = [], []
        for lo, hi in zip(bounds, bounds[1:]):
            starts.append(lo)
            members = [g for g in range(lo, hi) if rng.random() < 0.5]
            per_shard.append([g - lo for g in members])
        return per_shard, starts

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        total=st.integers(min_value=0, max_value=64),
        shards=st.integers(min_value=1, max_value=6),
    )
    def test_rebasing_reconstructs_global_ids(self, seed, total, shards):
        rng = random.Random(seed)
        per_shard, starts = self._partition(rng, total, shards)
        expected = sorted(
            start + local
            for locals_, start in zip(per_shard, starts)
            for local in locals_
        )
        merged = merge_support_sets(per_shard, starts)
        assert sorted(merged) == expected
        assert len(merged) == len(expected)  # disjoint shards: no overlap

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        total=st.integers(min_value=1, max_value=48),
        shards=st.integers(min_value=2, max_value=6),
    )
    def test_merge_is_associative_over_shard_grouping(
        self, seed, total, shards
    ):
        """Merging all shards at once equals merging a prefix first and
        OR-ing the rest in — the order routers receive answers in must
        not matter."""
        rng = random.Random(seed)
        per_shard, starts = self._partition(rng, total, shards)
        whole = merge_support_sets(per_shard, starts)
        split = rng.randint(1, shards - 1)
        left = merge_support_sets(per_shard[:split], starts[:split])
        right = merge_support_sets(per_shard[split:], starts[split:])
        left.union_update(right)
        assert sorted(left) == sorted(whole)

    @given(shards=st.integers(min_value=1, max_value=5))
    def test_empty_shards_contribute_nothing(self, shards):
        starts = [i * 10 for i in range(shards)]
        merged = merge_support_sets([[] for _ in range(shards)], starts)
        assert len(merged) == 0
        assert sorted(merged) == []

    @given(
        gids=st.lists(
            st.integers(min_value=0, max_value=200), unique=True
        )
    )
    def test_single_shard_is_identity(self, gids):
        merged = merge_support_sets([gids], [0])
        assert sorted(merged) == sorted(gids)
        assert len(merged) == len(gids)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MiningError, match="shard answers"):
            merge_support_sets([[0], [1]], [0])
