"""Tests for the pathway and PTE dataset simulators."""

from __future__ import annotations

import pytest

from repro.core.taxogram import mine
from repro.datagen.pathways import (
    ORGANISM_COUNT,
    PATHWAY_PROFILES,
    default_pathway_taxonomy,
    generate_pathway_dataset,
)
from repro.datagen.pte import PTE_GRAPH_COUNT, generate_pte_dataset


class TestPathwayProfiles:
    def test_all_25_pathways_present(self):
        assert len(PATHWAY_PROFILES) == 25
        names = {p.name for p in PATHWAY_PROFILES}
        assert "Nitrogen metabolism" in names
        assert "Citrate cycle (TCA cycle)" in names

    def test_conservation_monotone_in_pattern_count(self):
        by_count = sorted(PATHWAY_PROFILES, key=lambda p: p.paper_pattern_count)
        conservations = [p.conservation for p in by_count]
        assert conservations == sorted(conservations)
        assert 0.25 <= conservations[0] <= conservations[-1] <= 1.0

    def test_paper_values_recorded(self):
        nitrogen = next(
            p for p in PATHWAY_PROFILES if p.name == "Nitrogen metabolism"
        )
        assert nitrogen.paper_pattern_count == 1486
        assert nitrogen.paper_time_ms == 62777


class TestPathwayDataset:
    @pytest.fixture(scope="class")
    def taxonomy(self):
        return default_pathway_taxonomy(300)

    def test_organism_count_and_sizes(self, taxonomy):
        profile = PATHWAY_PROFILES[10]  # Histidine metabolism
        dataset = generate_pathway_dataset(profile, taxonomy=taxonomy)
        assert len(dataset.database) == ORGANISM_COUNT
        stats = dataset.database.stats()
        assert abs(stats.avg_nodes - profile.avg_nodes) < 3.0
        assert stats.avg_edges <= profile.avg_edges + 2.0

    def test_deterministic(self, taxonomy):
        profile = PATHWAY_PROFILES[0]
        a = generate_pathway_dataset(profile, taxonomy=taxonomy, seed=1)
        b = generate_pathway_dataset(profile, taxonomy=taxonomy, seed=1)
        for ga, gb in zip(a.database, b.database):
            assert ga.structure_key() == gb.structure_key()

    def test_different_pathways_differ(self, taxonomy):
        a = generate_pathway_dataset(PATHWAY_PROFILES[0], taxonomy=taxonomy)
        b = generate_pathway_dataset(PATHWAY_PROFILES[1], taxonomy=taxonomy)
        keys_a = [g.structure_key() for g in a.database]
        keys_b = [g.structure_key() for g in b.database]
        assert keys_a != keys_b

    def test_conserved_pathway_yields_more_patterns(self, taxonomy):
        weak = generate_pathway_dataset(
            PATHWAY_PROFILES[0], taxonomy=taxonomy  # Vitamin B6, cons ~0.36
        )
        strong = generate_pathway_dataset(
            PATHWAY_PROFILES[23], taxonomy=taxonomy  # Nitrogen, cons ~0.95
        )
        weak_result = mine(weak.database, taxonomy, min_support=0.2, max_edges=2)
        strong_result = mine(
            strong.database, taxonomy, min_support=0.2, max_edges=2
        )
        assert len(strong_result) > len(weak_result)


class TestPTEDataset:
    def test_default_count_matches_paper(self):
        db, _tax = generate_pte_dataset(graph_count=30)
        assert len(db) == 30
        assert PTE_GRAPH_COUNT == 416

    def test_molecule_shape(self):
        db, tax = generate_pte_dataset(graph_count=60, seed=1)
        stats = db.stats()
        assert 10 <= stats.avg_nodes <= 30
        assert stats.avg_edges >= stats.avg_nodes * 0.7
        # C/H/O skew: carbon and hydrogen dominate.
        from collections import Counter

        counts = Counter(
            tax.name_of(label) for g in db for label in g.node_labels()
        )
        assert counts["C"] + counts["H"] > sum(counts.values()) * 0.5

    def test_bond_labels(self):
        db, _tax = generate_pte_dataset(graph_count=20, seed=2)
        names = {db.edge_label_name(e) for g in db for _, _, e in g.edges()}
        assert names <= {"single", "double", "aromatic"}

    def test_deterministic(self):
        a, _ = generate_pte_dataset(graph_count=15, seed=9)
        b, _ = generate_pte_dataset(graph_count=15, seed=9)
        for ga, gb in zip(a, b):
            assert ga.structure_key() == gb.structure_key()

    def test_labels_live_in_atom_taxonomy(self):
        db, tax = generate_pte_dataset(graph_count=10)
        for g in db:
            for label in g.node_labels():
                assert label in tax

    def test_pattern_count_grows_as_support_drops(self):
        db, tax = generate_pte_dataset(graph_count=60, seed=4)
        high = mine(db, tax, min_support=0.6, max_edges=2)
        low = mine(db, tax, min_support=0.3, max_edges=2)
        assert len(low) > len(high)
