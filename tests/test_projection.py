"""Tests for :mod:`repro.mining.projection` (targeted embedding replay).

The parallel runtime's correctness rests on :func:`project_code`
reproducing *exactly* the embedding list gSpan carries for a code —
same embeddings, same order — so most tests here compare against
``GSpanMiner(keep_embeddings=True)``.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import MiningError
from repro.graphs.database import GraphDatabase
from repro.mining.gspan import GSpanMiner
from repro.mining.projection import project_code
from repro.util.interner import LabelInterner
from tests.conftest import make_random_database, make_random_taxonomy


def _two_graph_db() -> GraphDatabase:
    db = GraphDatabase()
    db.new_graph(["a", "b", "a"], [(0, 1, "x"), (1, 2, "x")])
    db.new_graph(["a", "b"], [(0, 1, "x")])
    return db


class TestProjectCode:
    def test_matches_miner_embeddings_exactly(self):
        db = _two_graph_db()
        miner = GSpanMiner(db, min_support=0.5, keep_embeddings=True)
        for pattern in miner.mine():
            replayed = project_code(db, pattern.code)
            assert replayed == pattern.embeddings

    def test_matches_miner_on_random_databases(self):
        total = 0
        for seed in range(8):
            rng = random.Random(seed)
            interner = LabelInterner()
            taxonomy = make_random_taxonomy(rng, interner, rng.randint(3, 6))
            db = make_random_database(rng, taxonomy, rng.randint(2, 5))
            miner = GSpanMiner(
                db, min_support=0.4, max_edges=3, keep_embeddings=True
            )
            for pattern in miner.mine():
                total += 1
                assert project_code(db, pattern.code) == pattern.embeddings
        assert total > 0, "no seed produced patterns; test exercised nothing"

    def test_infrequent_code_still_projects(self):
        # A code frequent in one "shard" but absent elsewhere must replay
        # to whatever embeddings exist — including none.
        db = _two_graph_db()
        code = ((0, 1, db.node_labels.id_of("a"), db.edge_labels.id_of("x"),
                 db.node_labels.id_of("b")),)
        embeddings = project_code(db, code)
        assert {e.graph_id for e in embeddings} == {0, 1}
        missing = (
            (0, 1, db.node_labels.id_of("b"), db.edge_labels.id_of("x"),
             db.node_labels.id_of("b")),
        )
        assert project_code(db, missing) == []

    def test_prefix_dead_end_short_circuits(self):
        db = _two_graph_db()
        a = db.node_labels.id_of("a")
        b = db.node_labels.id_of("b")
        x = db.edge_labels.id_of("x")
        # First edge never embeds, so the longer code projects to [].
        code = ((0, 1, b, x, b), (1, 2, b, x, a))
        assert project_code(db, code) == []

    def test_empty_code_rejected(self):
        with pytest.raises(MiningError, match="empty"):
            project_code(_two_graph_db(), ())

    def test_non_initial_first_edge_rejected(self):
        with pytest.raises(MiningError, match=r"\(0, 1\)"):
            project_code(_two_graph_db(), ((1, 2, 0, 0, 1),))

    def test_invalid_backward_extension_rejected(self):
        db = _two_graph_db()
        a = db.node_labels.id_of("a")
        b = db.node_labels.id_of("b")
        x = db.edge_labels.id_of("x")
        # Backward edge must leave the rightmost vertex; vertex 0 is not it.
        code = ((0, 1, a, x, b), (1, 2, b, x, a), (1, 0, b, x, a))
        with pytest.raises(MiningError, match="backward"):
            project_code(db, code)

    def test_invalid_forward_extension_rejected(self):
        db = _two_graph_db()
        a = db.node_labels.id_of("a")
        b = db.node_labels.id_of("b")
        x = db.edge_labels.id_of("x")
        # Forward edge must discover vertex len(vlabels), not skip ahead.
        code = ((0, 1, a, x, b), (1, 3, b, x, a))
        with pytest.raises(MiningError, match="forward"):
            project_code(db, code)
