"""Property tests for the paper's lemmas and pattern-set invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relabel import relabel_database, repair_taxonomy
from repro.core.taxogram import mine
from repro.graphs.graph import Graph
from repro.isomorphism.matchers import GeneralizedMatcher
from repro.isomorphism.vf2 import (
    find_embedding,
    is_generalized_isomorphic,
)
from repro.mining.gspan import GSpanMiner
from repro.util.interner import LabelInterner
from tests.conftest import make_random_database, make_random_taxonomy


def _instance(seed: int, max_labels: int = 8):
    rng = random.Random(seed)
    interner = LabelInterner()
    taxonomy = make_random_taxonomy(
        rng, interner, rng.randint(3, max_labels),
        dag=seed % 2 == 1, multiroot=seed % 5 == 4,
    )
    database = make_random_database(rng, taxonomy, rng.randint(2, 4))
    return rng, taxonomy, database


class TestLemma2SupportMonotonicity:
    """sup(P) <= sup(Pg) for every generalization Pg of P."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_generalizing_one_label_never_lowers_support(self, seed):
        rng, taxonomy, database = _instance(seed)
        working, _mg = repair_taxonomy(taxonomy)
        matcher = GeneralizedMatcher(working)

        result = mine(database, taxonomy, min_support=0.4, max_edges=2)
        for pattern in result.patterns[:10]:
            graph = pattern.graph
            for v in graph.nodes():
                label = graph.node_label(v)
                for parent in working.parents_of(label):
                    generalized = graph.copy()
                    generalized.relabel_node(v, parent)
                    support = sum(
                        1
                        for g in database
                        if find_embedding(generalized, g, matcher) is not None
                    )
                    assert support >= pattern.support_count


class TestMinimality:
    """Lemma 8: the final pattern set has no over-generalized member."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_no_overgeneralized_pairs(self, seed):
        _rng, taxonomy, database = _instance(seed)
        working, _mg = repair_taxonomy(taxonomy)
        result = mine(database, taxonomy, min_support=0.5, max_edges=2)
        patterns = result.patterns
        for general in patterns:
            for specific in patterns:
                if general.code == specific.code:
                    continue
                if general.support_count != specific.support_count:
                    continue
                assert not is_generalized_isomorphic(
                    general.graph, specific.graph, working
                ), (general.code, specific.code)


class TestCompleteness:
    """Lemma 9 via Lemma 6: every frequent exact pattern is represented.

    Any pattern found by plain gSpan on the original database is a
    frequent taxonomy pattern too; it must appear in Taxogram's output or
    be over-generalized by some member with the same support (which, by
    minimality + completeness, must be in the output).
    """

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_exact_patterns_covered(self, seed):
        _rng, taxonomy, database = _instance(seed)
        working, _mg = repair_taxonomy(taxonomy)
        sigma = 0.5
        matcher = GeneralizedMatcher(working)
        exact = GSpanMiner(database, min_support=sigma, max_edges=2).mine()
        result = mine(database, taxonomy, min_support=sigma, max_edges=2)
        result_map = result.pattern_codes()
        for mined in exact:
            # Under the taxonomy, the pattern's support is its
            # *generalized* support set (a superset of the exact one).
            generalized_support = frozenset(
                g.graph_id
                for g in database
                if find_embedding(mined.graph, g, matcher) is not None
            )
            assert generalized_support >= mined.support_set
            if mined.code in result_map:
                assert result_map[mined.code] == generalized_support
                continue
            # Must be over-generalized by an output pattern: a specialized
            # pattern with identical (generalized) support set.
            covered = any(
                support_set == generalized_support
                and is_generalized_isomorphic(
                    mined.graph, _graph_of(result, code), working
                )
                for code, support_set in result_map.items()
            )
            assert covered, mined.code


class TestThresholdMonotonicity:
    """Raising sigma can only shrink the final pattern set."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_nested_results(self, seed):
        _rng, taxonomy, database = _instance(seed)
        low = mine(database, taxonomy, min_support=0.4, max_edges=2)
        high = mine(database, taxonomy, min_support=0.9, max_edges=2)
        assert set(high.pattern_codes()) <= set(low.pattern_codes())


class TestRelabelInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_relabel_preserves_structure_and_originals(self, seed):
        _rng, taxonomy, database = _instance(seed)
        relabeled = relabel_database(database, taxonomy)
        assert len(relabeled.dmg) == len(database)
        for original, copy in zip(database, relabeled.dmg):
            assert original.num_nodes == copy.num_nodes
            assert sorted(original.edges()) == sorted(copy.edges())
            originals = relabeled.original_labels[original.graph_id]
            assert originals == original.node_labels()
            for v in copy.nodes():
                mg = copy.node_label(v)
                assert relabeled.taxonomy.is_ancestor_or_self(mg, originals[v])
                # Most general: no strict ancestor above it.
                assert not relabeled.taxonomy.parents_of(mg)


def _graph_of(result, code) -> Graph:
    for pattern in result:
        if pattern.code == code:
            return pattern.graph
    raise AssertionError("code not in result")
