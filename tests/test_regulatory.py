"""Tests for the directed regulatory-network dataset generator."""

from __future__ import annotations

import pytest

from repro.datagen.regulatory import RegulatoryConfig, generate_regulatory_database
from repro.directed.taxogram import mine_directed
from repro.exceptions import MiningError
from repro.taxonomy.go import go_like_taxonomy


class TestGenerator:
    @pytest.fixture(scope="class")
    def taxonomy(self):
        return go_like_taxonomy(concept_count=120, seed=2)

    def test_counts_and_labels(self, taxonomy):
        db = generate_regulatory_database(
            taxonomy, RegulatoryConfig(network_count=12, seed=1)
        )
        assert len(db) == 12
        for graph in db:
            assert graph.num_nodes >= 2
            for label in graph.node_labels():
                assert label in taxonomy

    def test_deterministic_by_seed(self, taxonomy):
        config = RegulatoryConfig(network_count=6, seed=7)
        a = generate_regulatory_database(taxonomy, config)
        b = generate_regulatory_database(taxonomy, config)
        for ga, gb in zip(a, b):
            assert ga.structure_key() == gb.structure_key()

    def test_invalid_config_rejected(self, taxonomy):
        with pytest.raises(MiningError):
            generate_regulatory_database(
                taxonomy, RegulatoryConfig(network_count=0)
            )

    def test_directed_patterns_minable(self, taxonomy):
        db = generate_regulatory_database(
            taxonomy, RegulatoryConfig(network_count=15, seed=3)
        )
        result = mine_directed(db, taxonomy, min_support=0.25, max_edges=2)
        # Planted motifs with shared concepts yield taxonomy-implied
        # directed patterns.
        assert len(result) > 0
        for pattern in result:
            assert pattern.graph.num_edges >= 1
            assert pattern.support >= 0.25
