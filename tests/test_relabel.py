"""Tests for Step 1: relabeling and multi-root taxonomy repair."""

from __future__ import annotations

import pytest

from repro.core.relabel import relabel_database, repair_taxonomy
from repro.exceptions import TaxonomyError
from repro.graphs.database import GraphDatabase
from repro.taxonomy.builders import taxonomy_from_parent_names


class TestRepairTaxonomy:
    def test_single_root_unchanged(self):
        tax = taxonomy_from_parent_names({"b": "a", "c": "b"})
        working, mg = repair_taxonomy(tax)
        assert working is tax
        root = tax.id_of("a")
        assert set(mg.values()) == {root}

    def test_disjoint_roots_keep_their_tops(self):
        tax = taxonomy_from_parent_names({"a1": "r1", "b1": "r2"})
        working, mg = repair_taxonomy(tax)
        assert working is tax  # no conflicts, nothing to repair
        assert mg[tax.id_of("a1")] == tax.id_of("r1")
        assert mg[tax.id_of("b1")] == tax.id_of("r2")

    def test_conflicting_roots_get_artificial_parent(self):
        tax = taxonomy_from_parent_names({"x": ["r1", "r2"], "y": "r1"})
        working, mg = repair_taxonomy(tax)
        assert len(working.roots()) == 1
        artificial = working.roots()[0]
        assert working.name_of(artificial) == "<root>"
        # Every label in the conflicted component maps to the artificial root.
        assert mg[tax.id_of("x")] == artificial
        assert mg[tax.id_of("y")] == artificial
        assert mg[tax.id_of("r1")] == artificial

    def test_mixed_components(self):
        # r1/r2 conflict via x; r3 is independent.
        tax = taxonomy_from_parent_names({"x": ["r1", "r2"], "z": "r3"})
        working, mg = repair_taxonomy(tax)
        roots = {working.name_of(r) for r in working.roots()}
        assert roots == {"<root>", "r3"}
        assert working.name_of(mg[tax.id_of("x")]) == "<root>"
        assert working.name_of(mg[tax.id_of("z")]) == "r3"

    def test_two_conflicted_components_get_distinct_roots(self):
        tax = taxonomy_from_parent_names(
            {"x": ["r1", "r2"], "y": ["r3", "r4"]}
        )
        working, mg = repair_taxonomy(tax)
        top_x = working.name_of(mg[tax.id_of("x")])
        top_y = working.name_of(mg[tax.id_of("y")])
        assert top_x != top_y
        assert top_x.startswith("<root>")
        assert top_y.startswith("<root>")

    def test_name_clash_rejected(self):
        tax = taxonomy_from_parent_names({"x": ["r1", "r2"], "<root>": "r1"})
        with pytest.raises(TaxonomyError, match="already names"):
            repair_taxonomy(tax)

    def test_ancestry_never_crosses_components(self):
        tax = taxonomy_from_parent_names({"x": ["r1", "r2"], "z": "r3"})
        working, _mg = repair_taxonomy(tax)
        x, z = working.id_of("x"), working.id_of("z")
        assert not working.ancestors_or_self(x) & working.ancestors_or_self(z)


class TestRelabelDatabase:
    def test_relabels_to_most_general_and_keeps_originals(self, go_excerpt):
        db = GraphDatabase(node_labels=go_excerpt.interner)
        db.new_graph(["protein_carrier", "dna_helicase"], [(0, 1)])
        relabeled = relabel_database(db, go_excerpt)
        root = go_excerpt.id_of("molecular_function")
        graph = relabeled.dmg[0]
        assert graph.node_labels() == [root, root]
        assert relabeled.original_labels[0] == [
            go_excerpt.id_of("protein_carrier"),
            go_excerpt.id_of("dna_helicase"),
        ]

    def test_original_database_untouched(self, go_excerpt):
        db = GraphDatabase(node_labels=go_excerpt.interner)
        db.new_graph(["carrier"], [])
        relabel_database(db, go_excerpt)
        assert db.node_label_name(db[0].node_label(0)) == "carrier"

    def test_structure_preserved(self, go_excerpt):
        db = GraphDatabase(node_labels=go_excerpt.interner)
        db.new_graph(["carrier", "helicase", "transporter"],
                     [(0, 1, "x"), (1, 2, "y")])
        relabeled = relabel_database(db, go_excerpt)
        graph = relabeled.dmg[0]
        assert graph.num_edges == 2
        assert db.edge_label_name(graph.edge_label(0, 1)) == "x"

    def test_unknown_label_rejected(self, go_excerpt):
        db = GraphDatabase(node_labels=go_excerpt.interner)
        db.node_labels.intern("alien")
        db.new_graph(["alien"], [])
        with pytest.raises(TaxonomyError, match="not a taxonomy concept"):
            relabel_database(db, go_excerpt)

    def test_multiroot_database(self):
        tax = taxonomy_from_parent_names({"x": ["r1", "r2"], "y": "r1"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["x", "y"], [(0, 1)])
        relabeled = relabel_database(db, tax)
        artificial = relabeled.taxonomy.roots()[0]
        assert relabeled.dmg[0].node_labels() == [artificial, artificial]
