"""Differential harness: routed answers are bit-identical to a
single-store reader.

The replication tier's correctness claim is exactness, not
best-effort: a query routed through replicas must return bytes that a
:class:`~repro.serving.reader.StoreReader` over the same store state
would have produced — at every committed version a catching-up
follower passes through, and under live ingest.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.replication import (
    Follower,
    FollowerOptions,
    FollowerService,
    HTTPReplica,
    LocalReplica,
    QueryRouter,
    RouterService,
)
from repro.serving import StoreReader, value_payload
from repro.streaming import ApplierOptions
from tests.test_replication_follower import _unapplied_primary
from tests.test_replication_shipper import (
    ADD_ONE,
    _mine_store,
    _request,
    primary,  # noqa: F401 - fixture re-export
)

GENERAL = "t # 0\nv 0 a\nv 1 a\ne 0 1 x\n"
PATTERNS = [
    GENERAL,  # generalized labels
    ADD_ONE,  # concrete mined pattern
    "t # 0\nv 0 b\nv 1 c\ne 0 1 y\n",  # different edge label
    "t # 0\nv 0 c\nv 1 c\ne 0 1 x\n",  # vf2 fallback territory
]
OPS = ("support", "contains", "graphs", "specializations")


def _canon(value) -> bytes:
    return json.dumps(value, sort_keys=True).encode("utf-8")


def _assert_bit_identical(router: QueryRouter, reader: StoreReader) -> None:
    """Every op, every probe pattern: routed bytes == direct bytes."""
    for pattern in PATTERNS:
        parsed = reader.parse_pattern(pattern)
        for op in OPS:
            routed = router.query(op, pattern)
            direct = reader.query(op, parsed)
            assert _canon(routed["value"]) == _canon(
                value_payload(reader, op, direct.value)
            ), f"{op} diverged on {pattern!r}"
    routed = router.query("top_k", k=5)
    direct = reader.query("top_k", None, k=5)
    assert _canon(routed["value"]) == _canon(
        value_payload(reader, "top_k", direct.value)
    )


class TestStaticIdentity:
    def test_replica_copies_answer_identically(self, tmp_path):
        store = _mine_store(tmp_path)
        copy = tmp_path / "copy"
        shutil.copytree(store, copy)
        router = QueryRouter(
            [LocalReplica(store), LocalReplica(copy)]
        )
        _assert_bit_identical(router, StoreReader(store))
        router.close()


class TestCatchUpIdentity:
    def test_every_intermediate_version_answers_identically(
        self, tmp_path
    ):
        """Step a follower through its catch-up batch by batch; at each
        committed version, answers routed to it must be bit-identical
        to a fresh reader over its store."""
        service, url, thread = _unapplied_primary(tmp_path, 6)
        try:
            with Follower(
                tmp_path / "replica",
                tmp_path / "rwal",
                url,
                options=FollowerOptions(poll_interval_seconds=0.02),
                applier_options=ApplierOptions(max_batch_records=2),
            ) as follower:
                follower.sync_once()
                versions_checked = 0
                while True:
                    router = QueryRouter(
                        [LocalReplica(tmp_path / "replica")]
                    )
                    _assert_bit_identical(
                        router, StoreReader(tmp_path / "replica")
                    )
                    router.close()
                    versions_checked += 1
                    if not follower.applier.apply_next_batch():
                        break
                assert follower.lag() == 0
                # 6 records in batches of <= 2: at least 4 distinct
                # committed versions were exercised.
                assert versions_checked >= 4
        finally:
            service.server.shutdown()
            thread.join(timeout=10)
            service.close()


class TestLiveIngestIdentity:
    def test_routed_reads_follow_live_ingest(self, primary, tmp_path):
        """Live ingest into the primary with two followers catching up
        behind a router: read-your-writes via min_applied_seq, then
        full-fleet bit-identity once everyone converges."""
        _service, url = primary
        followers, fthreads = [], []
        router_service = None
        rthread = None
        try:
            for i in range(2):
                fsvc = FollowerService(
                    tmp_path / f"replica{i}",
                    tmp_path / f"rwal{i}",
                    url,
                    port=0,
                    options=FollowerOptions(poll_interval_seconds=0.02),
                    applier_options=ApplierOptions(
                        max_latency_seconds=0.02
                    ),
                )
                fsvc.start()
                thread = threading.Thread(
                    target=fsvc.serve_forever, daemon=True
                )
                thread.start()
                followers.append(fsvc)
                fthreads.append(thread)
            urls = [
                f"http://{f.address[0]}:{f.address[1]}" for f in followers
            ]
            router_service = RouterService(
                [HTTPReplica(u) for u in urls], port=0
            )
            rthread = threading.Thread(
                target=router_service.serve_forever, daemon=True
            )
            rthread.start()
            rhost, rport = router_service.address
            rurl = f"http://{rhost}:{rport}"

            supports = []
            for _ in range(5):
                status, body, _ = _request(url, "/ingest", {"add": ADD_ONE})
                assert status in (200, 202)
                seq = json.loads(body)["seq"]
                # Read-your-writes: retry on 429 until a replica that
                # has applied our write serves the query.
                deadline = time.monotonic() + 30
                while True:
                    status, body, headers = _request(
                        rurl,
                        "/query",
                        {
                            "op": "support",
                            "pattern": GENERAL,
                            "min_applied_seq": seq,
                        },
                    )
                    if status == 200:
                        break
                    assert status == 429
                    assert headers["Retry-After"] == "1"
                    assert time.monotonic() < deadline, "never caught up"
                    time.sleep(0.05)
                supports.append(json.loads(body)["value"])
            # Each ingested graph adds one supporting graph; serving a
            # replica that applied write k means >= k+1 of them landed.
            base = supports[0]
            for i, value in enumerate(supports):
                assert value >= base + i
            # Convergence: wait for both followers to reach the final
            # write, then the routed answer must be byte-identical to
            # the primary's own store.
            final_seq = 4
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if all(
                    f.follower.applied_seq >= final_seq for f in followers
                ):
                    break
                time.sleep(0.05)
            router = QueryRouter(
                [LocalReplica(tmp_path / "replica0")]
            )
            _assert_bit_identical(
                router, StoreReader(_service.applier.store_dir)
            )
            router.close()
        finally:
            if router_service is not None:
                router_service.server.shutdown()
                rthread.join(timeout=10)
                router_service.close()
            for fsvc, thread in zip(followers, fthreads):
                fsvc.server.shutdown()
                thread.join(timeout=10)
                fsvc.close()
