"""Follower replicas: sync, byte-identity, bootstrap, crash recovery.

The crash harness mirrors ``test_streaming_crash``: a worker subprocess
syncs and applies in small steps while the parent SIGKILLs it at random
instants; after every kill the replica must recover to a usable state,
and once it finally catches up its store must be semantically identical
to offline one-by-one replay of the primary's records.
"""

from __future__ import annotations

import os
import random
import shutil
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.exceptions import ReplicationError
from repro.graphs.database import GraphDatabase
from repro.incremental import DatabaseDelta, PatternStore
from repro.replication import Follower, FollowerOptions, FollowerService
from repro.streaming import ApplierOptions, IngestOptions, WriteAheadLog
from repro.taxonomy.builders import taxonomy_from_parent_names
from tests.test_replication_shipper import (
    ADD_ONE,
    _mine_store,
    _request,
    primary,  # noqa: F401 - fixture re-export
)
from tests.test_streaming_applier import _offline_replay, _store_digest


def _segment_bytes(wal_dir: Path) -> bytes:
    return b"".join(
        path.read_bytes() for path in sorted(Path(wal_dir).iterdir())
    )


def _quick_options(**overrides):
    defaults = dict(poll_interval_seconds=0.02, secret="hush")
    defaults.update(overrides)
    return FollowerOptions(**defaults)


def _applier_options():
    return ApplierOptions(max_latency_seconds=0.02)


def _unapplied_primary(tmp_path, n_records, segment_max_bytes=None):
    """A served primary whose applier never runs: every journaled
    record is unapplied, so a follower must fetch and replay them all
    (a bootstrap snapshot alone cannot satisfy the watermark)."""
    from repro.replication import PrimaryService

    store_dir = _mine_store(tmp_path)
    service = PrimaryService(
        store_dir,
        tmp_path / "wal",
        port=0,
        options=IngestOptions(wait_timeout_seconds=60.0),
    )
    if segment_max_bytes is not None:
        service.wal.segment_max_bytes = segment_max_bytes
    for _ in range(n_records):
        service.wal.append(DatabaseDelta(add_text=ADD_ONE))
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    host, port = service.address
    return service, f"http://{host}:{port}", thread


class TestSync:
    def test_catch_up_replays_every_record(self, primary, tmp_path):
        service, url = primary
        for _ in range(4):
            _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
        with Follower(
            tmp_path / "replica",
            tmp_path / "rwal",
            url,
            options=_quick_options(),
            applier_options=_applier_options(),
        ) as follower:
            follower.catch_up(timeout=30)
            assert follower.applied_seq == 3
            assert follower.bootstrapped  # no local store existed
            store = PatternStore.open(tmp_path / "replica")
            assert store.app_state["replication_role"] == "follower"
            assert store.app_state["replication_source"] == url
        # Semantically identical to the primary's own applied store.
        assert _store_digest(tmp_path / "replica") == _store_digest(
            service.applier.store_dir
        )

    def test_rejournaled_wal_is_byte_identical(self, tmp_path):
        service, url, thread = _unapplied_primary(tmp_path, 3)
        try:
            with Follower(
                tmp_path / "replica",
                tmp_path / "rwal",
                url,
                options=FollowerOptions(poll_interval_seconds=0.02),
                applier_options=_applier_options(),
            ) as follower:
                follower.catch_up(timeout=30)
                assert follower.applied_seq == 2
            # Canonical delta encoding: the re-journaled log is byte-
            # for-byte the primary's log.
            assert _segment_bytes(tmp_path / "rwal") == _segment_bytes(
                service.wal.directory
            )
        finally:
            service.server.shutdown()
            thread.join(timeout=10)
            service.close()

    def test_small_fetch_chunks_split_frames(self, primary, tmp_path):
        """A 7-byte fetch budget cuts every frame across requests; the
        partial-frame buffer must reassemble all of them."""
        _service, url = primary
        for _ in range(3):
            _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
        with Follower(
            tmp_path / "replica",
            tmp_path / "rwal",
            url,
            options=_quick_options(fetch_max_bytes=7),
            applier_options=_applier_options(),
        ) as follower:
            follower.catch_up(timeout=60)
            assert follower.applied_seq == 2

    def test_incremental_sync_fetches_only_new_records(
        self, primary, tmp_path
    ):
        _service, url = primary
        _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
        with Follower(
            tmp_path / "replica",
            tmp_path / "rwal",
            url,
            options=_quick_options(),
            applier_options=_applier_options(),
        ) as follower:
            follower.catch_up(timeout=30)
            _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
            assert follower.sync_once() == 1
            follower.applier.drain()
            assert follower.applied_seq == 1
            assert follower.lag() == 0

    def test_wrong_secret_is_refused(self, primary, tmp_path):
        _service, url = primary
        follower = Follower(
            tmp_path / "replica",
            tmp_path / "rwal",
            url,
            options=_quick_options(secret="wrong"),
        )
        with pytest.raises(ReplicationError, match="signature"):
            follower.sync_once()
        assert follower.metrics.counter(
            "replication.signature_failures"
        ) == 1

    def test_sealed_segment_digests_verified(self, tmp_path):
        """Small primary segments seal quickly; every sealed segment the
        follower consumes is digest-checked against the manifest."""
        service, url, thread = _unapplied_primary(
            tmp_path, 3, segment_max_bytes=1
        )
        try:
            with Follower(
                tmp_path / "replica",
                tmp_path / "rwal",
                url,
                options=FollowerOptions(poll_interval_seconds=0.02),
                applier_options=_applier_options(),
            ) as follower:
                follower.catch_up(timeout=30)
                assert follower.metrics.counter(
                    "replication.segments_verified"
                ) == 3
        finally:
            service.server.shutdown()
            thread.join(timeout=10)
            service.close()


class TestBootstrap:
    def test_truncated_history_triggers_snapshot_reseed(
        self, primary, tmp_path
    ):
        """When the primary truncates WAL history a late-joining (or
        lagging) follower still needs, sync falls back to a snapshot."""
        service, url = primary
        service.wal.segment_max_bytes = 1  # seal after every append
        for _ in range(5):
            _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
        service.wal.truncate_applied(service.applier.applied_seq)
        manifest = service.shipper.manifest()
        assert manifest["earliest_seq"] == 5
        with Follower(
            tmp_path / "replica",
            tmp_path / "rwal",
            url,
            options=_quick_options(),
            applier_options=_applier_options(),
        ) as follower:
            follower.catch_up(timeout=30)
            assert follower.bootstrapped
            assert follower.applied_seq == 4  # from the snapshot's state
        assert _store_digest(tmp_path / "replica") == _store_digest(
            service.applier.store_dir
        )

    def test_interrupted_bootstrap_is_settled_on_restart(
        self, primary, tmp_path
    ):
        _service, url = primary
        _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
        replica = tmp_path / "replica"
        # A torn download (no manifest) must be discarded...
        stray = tmp_path / "replica.bootstrap"
        stray.mkdir()
        (stray / "partial").write_bytes(b"junk")
        with Follower(
            replica, tmp_path / "rwal", url, options=_quick_options()
        ) as follower:
            assert not stray.exists()
            assert not follower.bootstrapped
        # ...while a completed bootstrap next to a missing store is
        # adopted wholesale.
        with Follower(
            replica,
            tmp_path / "rwal",
            url,
            options=_quick_options(),
            applier_options=_applier_options(),
        ) as follower:
            follower.catch_up(timeout=30)
        shutil.move(replica, stray)
        with Follower(
            replica, tmp_path / "rwal2", url, options=_quick_options()
        ) as follower:
            assert follower.bootstrapped
            assert (replica / "manifest.json").exists()
            assert not stray.exists()


class TestFollowerService:
    def test_serves_queries_and_health_while_syncing(
        self, primary, tmp_path
    ):
        _service, url = primary
        _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
        service = FollowerService(
            tmp_path / "replica",
            tmp_path / "rwal",
            url,
            port=0,
            options=_quick_options(),
            applier_options=_applier_options(),
        )
        thread = threading.Thread(
            target=service.serve_forever, daemon=True
        )
        thread.start()
        service.start()
        host, port = service.address
        furl = f"http://{host}:{port}"
        try:
            _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                import json as _json

                status, body, _ = _request(furl, "/health")
                doc = _json.loads(body)
                assert status == 200
                assert doc["role"] == "follower"
                assert doc["source"] == url
                if doc["applied_seq"] == 1 and doc["lag"] == 0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"follower never caught up: {doc}")
            assert doc["sync_ok"] is True
            # The read-only face refuses ingestion.
            status, _body, _ = _request(furl, "/ingest", {"add": ADD_ONE})
            assert status in (404, 405)
        finally:
            service.server.shutdown()
            thread.join(timeout=10)
            service.close()

    def test_primary_outage_flips_sync_ok_not_serving(
        self, primary, tmp_path
    ):
        import json as _json

        p_service, url = primary
        _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
        service = FollowerService(
            tmp_path / "replica",
            tmp_path / "rwal",
            url,
            port=0,
            options=_quick_options(request_timeout_seconds=1.0),
            applier_options=_applier_options(),
        )
        thread = threading.Thread(
            target=service.serve_forever, daemon=True
        )
        thread.start()
        service.start()
        host, port = service.address
        furl = f"http://{host}:{port}"
        try:
            # Partition the primary away: stop serving AND close the
            # listening socket so connections fail fast.
            p_service.server.shutdown()
            p_service.server.server_close()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, body, _ = _request(furl, "/health")
                doc = _json.loads(body)
                if doc["sync_ok"] is False:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("sync failure never surfaced in /health")
            assert doc["sync_error"]
            # Queries still answer from the last committed version.
            status, body, _ = _request(
                furl, "/query", {"op": "support", "pattern": ADD_ONE}
            )
            assert status == 200
        finally:
            service.server.shutdown()
            thread.join(timeout=10)
            service.close()


# -- SIGKILL crash harness ----------------------------------------------------

_WORKER = """
import sys, time
from repro.replication import Follower, FollowerOptions
from repro.streaming import ApplierOptions

store_dir, wal_dir, url = sys.argv[1], sys.argv[2], sys.argv[3]
with Follower(
    store_dir, wal_dir, url,
    options=FollowerOptions(poll_interval_seconds=0.01, fetch_max_bytes=64),
    applier_options=ApplierOptions(max_batch_records=2),
) as follower:
    while True:
        follower.sync_once()
        while follower.applier.apply_next_batch():
            time.sleep(0.02)
        if follower.lag() == 0:
            break
        time.sleep(0.02)
print("caught-up", follower.applied_seq)
"""


def _build_primary_case(tmp_path, seed):
    """A served primary whose WAL holds a randomized delta mix.

    The primary's own applier is *not* started: the follower must do
    every apply itself, so kills land inside its replay path.
    """
    from repro.replication import PrimaryService

    rng = random.Random(seed)
    taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a", "d": "b"})

    def edge_db(names, nodes=("b", "c")):
        db = GraphDatabase(node_labels=taxonomy.interner)
        for name in names:
            db.new_graph(list(nodes), [(0, 1, name)])
        return db

    store_dir = tmp_path / "pstore"
    Taxogram(
        TaxogramOptions(min_support=0.3, store_out=str(store_dir))
    ).mine(db := edge_db(["x", "x", "y", "y", "x"]), taxonomy)
    del db
    seed_copy = tmp_path / "seed"
    shutil.copytree(store_dir, seed_copy)
    records = []
    labels = ["x", "y", "w"]
    nodes_pool = [("b", "c"), ("d", "c"), ("b", "ghost")]  # ghost -> reject
    for _ in range(10):
        if rng.random() < 0.6:
            names = [rng.choice(labels) for _ in range(rng.randint(1, 2))]
            records.append(
                DatabaseDelta.adding(edge_db(names, rng.choice(nodes_pool)))
            )
        else:
            ids = rng.sample(range(10), rng.randint(1, 2))
            records.append(DatabaseDelta.removing(ids))
    service = PrimaryService(
        store_dir,
        tmp_path / "pwal",
        port=0,
        options=IngestOptions(wait_timeout_seconds=60.0),
    )
    for record in records:
        service.wal.append(record)
    return service, seed_copy, records


def _run_follower_with_kills(tmp_path, url, rng, max_rounds=40):
    worker = tmp_path / "worker.py"
    worker.write_text(_WORKER)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    replica, rwal = tmp_path / "replica", tmp_path / "rwal"
    kills = 0
    for _ in range(max_rounds):
        proc = subprocess.Popen(
            [sys.executable, str(worker), str(replica), str(rwal), url],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        time.sleep(rng.uniform(0.0, 0.6))
        if proc.poll() is None:
            proc.kill()
            proc.wait()
            kills += 1
        else:
            stdout, stderr = proc.communicate()
            assert proc.returncode == 0, stderr.decode()
            assert b"caught-up" in stdout
            return replica, kills
        # Crash invariant: whatever instant the kill landed — mid-
        # bootstrap, mid-fetch, mid-apply, mid-swap — a fresh Follower
        # settles the wreckage into an openable state.
        if (replica / "manifest.json").exists() or any(
            tmp_path.glob("replica.*")
        ):
            probe = Follower(
                replica,
                rwal,
                url,
                options=FollowerOptions(poll_interval_seconds=0.01),
            )
            probe.ensure_open()
            PatternStore.open(replica)
            probe.close()
    pytest.fail("follower worker never caught up")


def _crash_case(tmp_path, seed):
    service, seed_copy, records = _build_primary_case(tmp_path, seed)
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    host, port = service.address
    url = f"http://{host}:{port}"
    rng = random.Random(seed + 1)
    try:
        replica, kills = _run_follower_with_kills(tmp_path, url, rng)
        oracle = _offline_replay(seed_copy, tmp_path / "oracle", records)
        assert _store_digest(replica) == _store_digest(oracle)
        return kills
    finally:
        service.server.shutdown()
        thread.join(timeout=10)
        service.close()


class TestCrashRecovery:
    def test_sigkilled_follower_converges_to_offline_replay(self, tmp_path):
        _crash_case(tmp_path, seed=7)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(20, 26))
    def test_sigkill_sweep(self, tmp_path, seed):
        _crash_case(tmp_path, seed=seed)
