"""Scatter-gather router: dispatch, failover, staleness, shard merges.

Replica-pool behaviour is pinned with :class:`LocalReplica` (no
sockets); the HTTP face and the failover path run against real
follower/primary servers.
"""

from __future__ import annotations

import json
import shutil
import threading
import urllib.request

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.exceptions import ReplicationError
from repro.graphs.database import GraphDatabase
from repro.replication import (
    HTTPReplica,
    LocalReplica,
    QueryRouter,
    RouterOptions,
    RouterService,
    StaleReplicasError,
)
from repro.replication.router import QueryRejected
from repro.serving import StoreReader
from repro.taxonomy.builders import taxonomy_from_parent_names
from tests.test_replication_shipper import ADD_ONE, _mine_store, _request

GENERAL = "t # 0\nv 0 a\nv 1 a\ne 0 1 x\n"


@pytest.fixture
def store(tmp_path):
    return _mine_store(tmp_path)


def _replicas(tmp_path, store, n):
    dirs = [store]
    for i in range(1, n):
        copy = tmp_path / f"copy{i}"
        shutil.copytree(store, copy)
        dirs.append(copy)
    return [LocalReplica(d, name=f"r{i}") for i, d in enumerate(dirs)]


class TestReplicatedDispatch:
    def test_answers_match_direct_reader(self, tmp_path, store):
        router = QueryRouter(_replicas(tmp_path, store, 3))
        reader = StoreReader(store)
        for op in ("support", "contains", "graphs", "specializations"):
            routed = router.query(op, GENERAL)
            direct = reader.query(op, reader.parse_pattern(GENERAL))
            from repro.serving import value_payload

            assert routed["value"] == value_payload(
                reader, op, direct.value
            )
        routed = router.query("top_k", k=2)
        direct = reader.query("top_k", None, k=2)
        from repro.serving import value_payload

        assert routed["value"] == value_payload(
            reader, "top_k", direct.value
        )
        router.close()

    def test_round_robin_spreads_load(self, tmp_path, store):
        router = QueryRouter(_replicas(tmp_path, store, 3))
        served = [router.query("support", GENERAL)["replica"]
                  for _ in range(6)]
        assert set(served) == {"r0", "r1", "r2"}
        router.close()

    def test_unknown_op_rejected_without_eviction(self, tmp_path, store):
        router = QueryRouter(_replicas(tmp_path, store, 2))
        with pytest.raises(QueryRejected):
            router.query("explode", GENERAL)
        with pytest.raises(QueryRejected, match="unknown record type"):
            router.query("support", "not a graph")
        assert router.metrics.counter("replication.router_evictions") == 0
        assert all(s["up"] for s in router.replica_states())
        router.close()

    def test_dead_replica_evicted_and_failed_over(self, tmp_path, store):
        class Dead:
            name = "dead"

            def health(self):
                raise OSError("connection refused")

            def query(self, *args, **kwargs):
                raise OSError("connection refused")

        replicas = [Dead(), *_replicas(tmp_path, store, 1)]
        router = QueryRouter(
            replicas, options=RouterOptions(health_max_age_seconds=0.0)
        )
        for _ in range(3):
            answer = router.query("support", GENERAL)
            assert answer["replica"] == "r0"
        assert router.metrics.counter("replication.router_evictions") >= 1
        states = {s["replica"]: s for s in router.replica_states()}
        assert states["dead"]["up"] is False
        assert states["r0"]["up"] is True
        router.close()

    def test_all_replicas_down_is_an_error(self):
        class Dead:
            name = "dead"

            def health(self):
                raise OSError("nope")

            def query(self, *args, **kwargs):
                raise OSError("nope")

        router = QueryRouter([Dead()])
        with pytest.raises(ReplicationError, match="healthy"):
            router.query("support", GENERAL)
        router.close()


class TestStaleness:
    def test_min_applied_seq_gates_dispatch(self, tmp_path, store):
        # A freshly mined store has no applied offset (-1): any
        # min_applied_seq >= 0 must shed rather than serve stale data.
        router = QueryRouter(_replicas(tmp_path, store, 2))
        router.query("support", GENERAL, min_applied_seq=-1)
        with pytest.raises(StaleReplicasError) as info:
            router.query("support", GENERAL, min_applied_seq=0)
        assert info.value.retry_after == 1
        assert router.metrics.counter(
            "replication.router_shed_stale"
        ) == 1
        router.close()

    def test_max_staleness_excludes_laggards(self, tmp_path, store):
        """With a fleet-relative bound, only replicas near the freshest
        applied offset serve."""
        from repro.incremental import PatternStore

        fresh_dir = tmp_path / "fresh"
        shutil.copytree(store, fresh_dir)
        fresh = PatternStore.open(fresh_dir)
        fresh.app_state["wal_applied_seq"] = 100
        fresh.save()
        replicas = [
            LocalReplica(store, name="laggard"),  # applied -1
            LocalReplica(fresh_dir, name="fresh"),  # applied 100
        ]
        router = QueryRouter(
            replicas, options=RouterOptions(max_staleness=10)
        )
        for _ in range(4):
            assert router.query("support", GENERAL)["replica"] == "fresh"
        router.close()


class TestShardedDispatch:
    @staticmethod
    def _sharded_stores(tmp_path):
        """One global store vs two stores mined over halves of the
        database, in shard order."""
        taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a"})

        def build(names, out):
            db = GraphDatabase(node_labels=taxonomy.interner)
            for name in names:
                db.new_graph(["b", "c"], [(0, 1, name)])
            Taxogram(
                TaxogramOptions(min_support=0.25, store_out=str(out))
            ).mine(db, taxonomy)

        names = ["x", "y", "x", "y", "x", "x"]
        build(names, tmp_path / "global")
        build(names[:3], tmp_path / "shard0")
        build(names[3:], tmp_path / "shard1")
        return tmp_path / "global", [
            tmp_path / "shard0", tmp_path / "shard1"
        ]

    def test_support_and_graphs_merge_exactly(self, tmp_path):
        global_dir, shard_dirs = self._sharded_stores(tmp_path)
        router = QueryRouter(
            [LocalReplica(d, name=d.name) for d in shard_dirs],
            options=RouterOptions(sharded=True),
        )
        reader = StoreReader(global_dir)
        for pattern in (GENERAL, ADD_ONE, "t # 0\nv 0 b\nv 1 c\ne 0 1 y\n"):
            routed = router.query("support", pattern)
            direct = reader.query(
                "support", reader.parse_pattern(pattern)
            )
            assert routed["value"] == direct.value
            assert routed["sharded"] is True and routed["shards"] == 2
            graphs = router.query("graphs", pattern)
            assert graphs["value"]["support"] == direct.value
            assert graphs["value"]["graph_ids"] == sorted(
                reader.query(
                    "graphs", reader.parse_pattern(pattern)
                ).value.graph_ids
            )
        router.close()

    def test_global_only_ops_refused(self, tmp_path):
        _global_dir, shard_dirs = self._sharded_stores(tmp_path)
        router = QueryRouter(
            [LocalReplica(d) for d in shard_dirs],
            options=RouterOptions(sharded=True),
        )
        for op in ("contains", "specializations", "top_k"):
            with pytest.raises(QueryRejected, match="shard"):
                router.query(op, GENERAL)
        with pytest.raises(QueryRejected, match="min_applied_seq"):
            router.query("support", GENERAL, min_applied_seq=0)
        router.close()

    def test_missing_shard_fails_the_answer(self, tmp_path):
        _global_dir, shard_dirs = self._sharded_stores(tmp_path)

        class Dead:
            name = "shard1"

            def health(self):
                raise OSError("gone")

            def query(self, *args, **kwargs):
                raise OSError("gone")

        router = QueryRouter(
            [LocalReplica(shard_dirs[0]), Dead()],
            options=RouterOptions(sharded=True),
        )
        with pytest.raises(ReplicationError, match="every shard"):
            router.query("support", GENERAL)
        router.close()


class TestRouterHTTP:
    @pytest.fixture
    def routed(self, tmp_path, store):
        service = RouterService(_replicas(tmp_path, store, 2), port=0)
        thread = threading.Thread(
            target=service.serve_forever, daemon=True
        )
        thread.start()
        host, port = service.address
        try:
            yield f"http://{host}:{port}"
        finally:
            service.server.shutdown()
            thread.join(timeout=10)
            service.close()

    def test_query_and_top_roundtrip(self, routed, store):
        status, body, _ = _request(
            routed, "/query", {"op": "support", "pattern": GENERAL}
        )
        assert status == 200
        doc = json.loads(body)
        reader = StoreReader(store)
        assert doc["value"] == reader.query(
            "support", reader.parse_pattern(GENERAL)
        ).value
        status, body, _ = _request(routed, "/top?k=2")
        assert status == 200
        assert len(json.loads(body)["value"]) <= 2

    def test_staleness_sheds_with_retry_after(self, routed):
        req = urllib.request.Request(
            routed + "/query",
            json.dumps(
                {
                    "op": "support",
                    "pattern": GENERAL,
                    "min_applied_seq": 5,
                }
            ).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10)
        assert info.value.code == 429
        assert info.value.headers["Retry-After"] == "1"

    def test_bad_pattern_is_400(self, routed):
        status, body, _ = _request(
            routed, "/query", {"op": "support", "pattern": "garbage"}
        )
        assert status == 400

    def test_health_lists_replicas(self, routed):
        status, body, _ = _request(routed, "/health")
        doc = json.loads(body)
        assert doc["role"] == "router"
        assert doc["mode"] == "replicated"
        assert [r["replica"] for r in doc["replicas"]] == ["r0", "r1"]
        assert all(r["up"] for r in doc["replicas"])
        status, body, _ = _request(routed, "/metrics")
        assert status == 200

    def test_partitioned_follower_evicted_router_keeps_answering(
        self, tmp_path
    ):
        """Kill one of two live follower servers; the router evicts it
        and keeps serving exact answers from the survivor."""
        import urllib.error

        from repro.replication import FollowerOptions, FollowerService
        from repro.streaming import ApplierOptions
        from tests.test_replication_follower import _unapplied_primary

        p_service, url, p_thread = _unapplied_primary(tmp_path, 2)
        followers = []
        threads = []
        try:
            for i in range(2):
                fsvc = FollowerService(
                    tmp_path / f"replica{i}",
                    tmp_path / f"rwal{i}",
                    url,
                    port=0,
                    options=FollowerOptions(poll_interval_seconds=0.02),
                    applier_options=ApplierOptions(
                        max_latency_seconds=0.02
                    ),
                )
                fsvc.follower.catch_up(timeout=30)
                thread = threading.Thread(
                    target=fsvc.serve_forever, daemon=True
                )
                thread.start()
                followers.append(fsvc)
                threads.append(thread)
            urls = [
                f"http://{f.address[0]}:{f.address[1]}" for f in followers
            ]
            router = QueryRouter(
                [HTTPReplica(u, timeout=2.0) for u in urls],
                options=RouterOptions(
                    health_max_age_seconds=0.0, eviction_seconds=60.0
                ),
            )
            before = router.query("support", GENERAL)["value"]
            # Partition follower 0 away entirely.
            followers[0].server.shutdown()
            followers[0].server.server_close()
            threads[0].join(timeout=10)
            for _ in range(4):
                answer = router.query("support", GENERAL)
                assert answer["value"] == before
                assert answer["replica"] == urls[1]
            assert router.metrics.counter(
                "replication.router_evictions"
            ) >= 1
            router.close()
        finally:
            for fsvc, thread in zip(followers, threads):
                try:
                    fsvc.server.shutdown()
                except Exception:
                    pass
                thread.join(timeout=5)
                fsvc.close()
            p_service.server.shutdown()
            p_thread.join(timeout=10)
            p_service.close()


_FOLLOWER_SERVER = """
import sys
from repro.replication import FollowerOptions, FollowerService
from repro.streaming import ApplierOptions

store_dir, wal_dir, url = sys.argv[1], sys.argv[2], sys.argv[3]
service = FollowerService(
    store_dir, wal_dir, url, port=int(sys.argv[4]),
    options=FollowerOptions(poll_interval_seconds=0.02, fetch_max_bytes=64),
    applier_options=ApplierOptions(max_batch_records=1),
)
service.start()
print("PORT", service.address[1], flush=True)
service.serve_forever()
"""


@pytest.mark.slow
def test_router_survives_sigkilled_follower_and_rejoin(tmp_path):
    """Nightly failover drill: two follower server subprocesses behind a
    router; one is SIGKILLed mid-replay.  The router must evict it and
    keep answering from the survivor; a restarted follower must recover
    its half-applied store and serve again."""
    import os
    import subprocess
    import sys
    import time
    from pathlib import Path

    from tests.test_replication_follower import _unapplied_primary

    p_service, url, p_thread = _unapplied_primary(tmp_path, 8)
    worker = tmp_path / "follower_server.py"
    worker.write_text(_FOLLOWER_SERVER)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")

    def spawn(i, port=0):
        proc = subprocess.Popen(
            [sys.executable, "-u", str(worker),
             str(tmp_path / f"replica{i}"), str(tmp_path / f"rwal{i}"),
             url, str(port)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        banner = proc.stdout.readline().decode()
        assert banner.startswith("PORT"), (
            banner + proc.stderr.read().decode()
        )
        return proc, int(banner.split()[1])

    procs = []
    try:
        (proc0, port0) = spawn(0)
        (proc1, port1) = spawn(1)
        procs = [proc0, proc1]
        urls = [f"http://127.0.0.1:{port0}", f"http://127.0.0.1:{port1}"]
        router = QueryRouter(
            [HTTPReplica(u, timeout=2.0) for u in urls],
            options=RouterOptions(
                health_max_age_seconds=0.0, eviction_seconds=0.2
            ),
        )
        expected = router.query("support", GENERAL)["value"]
        # Kill follower 0 mid-replay (1-record batches + tiny fetches
        # mean it is almost certainly inside the sync/apply loop).
        proc0.kill()
        proc0.wait()
        for _ in range(6):
            answer = router.query("support", GENERAL)
            assert answer["replica"] == urls[1]
            assert answer["value"] >= expected
        assert router.metrics.counter("replication.router_evictions") >= 1
        # Restart on the same port: recovery must settle the killed
        # replica's store and the router must route to it again.
        (proc0, _port) = spawn(0, port=port0)
        procs[0] = proc0
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            time.sleep(0.3)
            served = {
                router.query("support", GENERAL)["replica"]
                for _ in range(4)
            }
            if urls[0] in served:
                break
        else:
            pytest.fail("restarted follower never rejoined the pool")
        router.close()
    finally:
        for proc in procs:
            proc.kill()
            proc.wait()
        p_service.server.shutdown()
        p_thread.join(timeout=10)
        p_service.close()


class TestEvictionBackoff:
    """A flapping replica must not cost one probe per eviction window
    forever: consecutive failures double the down window up to
    ``eviction_backoff_cap``, and a single healthy answer resets the
    streak.  Driven with explicit clock values — no sleeps."""

    class _Flapper:
        name = "flapper"

        def __init__(self):
            self.broken = True

        def health(self):
            if self.broken:
                raise OSError("connection refused")
            return {"applied_seq": 0, "store_version": 1}

        def query(self, *args, **kwargs):
            raise OSError("connection refused")

    def _router(self, **options):
        flapper = self._Flapper()
        router = QueryRouter(
            [flapper],
            options=RouterOptions(
                health_max_age_seconds=0.0,
                eviction_seconds=2.0,
                **options,
            ),
        )
        return router, flapper, router._states[0]

    def test_down_window_doubles_up_to_the_cap(self):
        router, _flapper, state = self._router(eviction_backoff_cap=8.0)
        now = 0.0
        for expected in (1.0, 2.0, 4.0, 8.0, 8.0, 8.0):
            now = max(now, state.down_until)
            router._refresh_health(state, now)
            assert state.down_until - now == pytest.approx(
                2.0 * expected
            )
        router.close()

    def test_one_healthy_answer_resets_the_streak(self):
        router, flapper, state = self._router(eviction_backoff_cap=8.0)
        now = 0.0
        for _ in range(4):
            now = max(now, state.down_until)
            router._refresh_health(state, now)
        assert state.failures == 4
        flapper.broken = False
        now = state.down_until
        router._refresh_health(state, now)
        assert state.failures == 0
        assert state.up(now)
        # The next outage starts the ladder over at 1x.
        flapper.broken = True
        state.health_at = float("-inf")
        router._refresh_health(state, now)
        assert state.down_until - now == pytest.approx(2.0)
        router.close()

    def test_cap_of_one_disables_the_ladder(self):
        router, _flapper, state = self._router(eviction_backoff_cap=1.0)
        now = 0.0
        for _ in range(5):
            now = max(now, state.down_until)
            router._refresh_health(state, now)
            assert state.down_until - now == pytest.approx(2.0)
        router.close()

    def test_flapping_follower_readmitted_live(self, tmp_path, store):
        """Public-path version: evictions during query() while a healthy
        replica keeps serving, then recovery re-admits the flapper."""
        from tests.conftest import wait_until

        healthy = _replicas(tmp_path, store, 1)[0]
        flapper_reader = LocalReplica(store, name="flappy")

        class GatedReplica:
            name = "flappy"

            def __init__(self):
                self.broken = True

            def health(self):
                if self.broken:
                    raise OSError("connection refused")
                return flapper_reader.health()

            def query(self, *args, **kwargs):
                if self.broken:
                    raise OSError("connection refused")
                return flapper_reader.query(*args, **kwargs)

        gated = GatedReplica()
        router = QueryRouter(
            [gated, healthy],
            options=RouterOptions(
                health_max_age_seconds=0.0, eviction_seconds=0.05
            ),
        )
        try:
            for _ in range(4):
                assert router.query("support", GENERAL)["replica"] == "r0"
            assert (
                router.metrics.counter("replication.router_evictions") >= 1
            )
            gated.broken = False

            def flapper_serves():
                return any(
                    router.query("support", GENERAL)["replica"] == "flappy"
                    for _ in range(4)
                )

            wait_until(
                flapper_serves,
                interval=0.05,
                message="recovered replica to rejoin the pool",
            )
        finally:
            router.close()


class TestSessionPinning:
    """Interactive sessions are replica-local state: the router pins a
    session to the replica that created it and keeps every request of
    that session on the same replica for its whole lifetime."""

    EXAMPLE = "t # 0\nv 0 b\nv 1 c\ne 0 1 x\n"

    def _create(self, router, tenant="acme"):
        status, payload, _ = router.session_request(
            "POST", "/sessions", json.dumps({"tenant": tenant}).encode()
        )
        assert status == 201
        return payload

    def test_session_sticks_to_its_replica_for_life(self, tmp_path, store):
        router = QueryRouter(_replicas(tmp_path, store, 3))
        try:
            payload = self._create(router)
            sid, home = payload["session_id"], payload["replica"]
            assert router.session_pins() == {sid: home}
            # Round-robin would spread these over r0..r2; the pin
            # must hold them all on the creating replica.
            for _ in range(3):
                status, doc, _ = router.session_request(
                    "POST",
                    f"/sessions/{sid}/examples",
                    json.dumps({"graphs": self.EXAMPLE}).encode(),
                )
                assert (status, doc["replica"]) == (200, home)
            status, doc, _ = router.session_request(
                "POST", f"/sessions/{sid}/mine", b"{}"
            )
            assert (status, doc["replica"]) == (200, home)
            assert doc["patterns"]
            status, doc, _ = router.session_request(
                "GET", f"/sessions/{sid}"
            )
            assert (status, doc["replica"]) == (200, home)
            assert router.metrics.counter(
                "replication.router_session_forwards"
            ) == 6
        finally:
            router.close()

    def test_new_sessions_round_robin_across_replicas(self, tmp_path, store):
        router = QueryRouter(_replicas(tmp_path, store, 3))
        try:
            homes = {self._create(router)["replica"] for _ in range(6)}
            assert homes == {"r0", "r1", "r2"}
            assert len(router.session_pins()) == 6
        finally:
            router.close()

    def test_delete_unpins(self, tmp_path, store):
        router = QueryRouter(_replicas(tmp_path, store, 2))
        try:
            sid = self._create(router)["session_id"]
            status, doc, _ = router.session_request(
                "DELETE", f"/sessions/{sid}"
            )
            assert (status, doc["deleted"]) == (200, True)
            assert router.session_pins() == {}
            # The session is gone fleet-wide, whatever replica answers.
            status, _doc, _ = router.session_request(
                "GET", f"/sessions/{sid}"
            )
            assert status == 404
        finally:
            router.close()

    class _Mortal:
        """A LocalReplica that can drop dead on command."""

        def __init__(self, inner):
            self.inner = inner
            self.name = inner.name
            self.dead = False

        def _check(self):
            if self.dead:
                raise OSError("connection refused")

        def health(self):
            self._check()
            return self.inner.health()

        def query(self, *args, **kwargs):
            self._check()
            return self.inner.query(*args, **kwargs)

        def request(self, *args, **kwargs):
            self._check()
            return self.inner.request(*args, **kwargs)

    def test_dead_pinned_replica_drops_pin_and_404s(self, tmp_path, store):
        replicas = [
            self._Mortal(replica)
            for replica in _replicas(tmp_path, store, 2)
        ]
        router = QueryRouter(
            replicas, options=RouterOptions(health_max_age_seconds=0.0)
        )
        try:
            payload = self._create(router)
            sid, home = payload["session_id"], payload["replica"]
            next(r for r in replicas if r.name == home).dead = True
            # The pin's replica is detected down via health refresh:
            # the pin is dropped and the request falls through to a
            # healthy replica, which faithfully answers 404 — the
            # session's scratch state died with its replica.
            status, _doc, _ = router.session_request(
                "GET", f"/sessions/{sid}"
            )
            assert status == 404
            assert router.session_pins() == {}
            assert router.metrics.counter(
                "replication.router_session_repins"
            ) == 1
            # A fresh session lands on the survivor and works.
            payload = self._create(router)
            assert payload["replica"] != home
        finally:
            router.close()

    def test_sharded_mode_refuses_sessions(self, tmp_path, store):
        router = QueryRouter(
            _replicas(tmp_path, store, 2),
            options=RouterOptions(sharded=True),
        )
        try:
            with pytest.raises(QueryRejected, match="session"):
                router.session_request("POST", "/sessions", b"{}")
        finally:
            router.close()

    def test_http_front_round_trip_and_health_pins(self, tmp_path, store):
        service = RouterService(_replicas(tmp_path, store, 2), port=0)
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        host, port = service.address
        base = f"http://{host}:{port}"
        try:
            status, body, _ = _request(base, "/sessions", {"tenant": "http"})
            assert status == 201
            doc = json.loads(body)
            sid, home = doc["session_id"], doc["replica"]
            status, body, _ = _request(
                base, f"/sessions/{sid}/examples", {"graphs": self.EXAMPLE}
            )
            assert status == 200
            status, body, _ = _request(base, f"/sessions/{sid}/mine", {})
            assert status == 200
            doc = json.loads(body)
            assert doc["replica"] == home
            assert doc["patterns"]
            status, body, _ = _request(base, "/health")
            assert json.loads(body)["session_pins"] == {sid: home}
            request = urllib.request.Request(
                base + f"/sessions/{sid}", method="DELETE"
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
            status, body, _ = _request(base, "/health")
            assert json.loads(body)["session_pins"] == {}
        finally:
            service.server.shutdown()
            thread.join(timeout=10)
            service.close()
