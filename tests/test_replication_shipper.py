"""Primary-side publishing: manifests, signatures, snapshots.

The shipper is pinned at two levels: :class:`SegmentShipper` directly
against a WAL + store on disk, and the HTTP surface through a real
:class:`PrimaryService` socket (one port serving ingest, queries and
replication at once).
"""

from __future__ import annotations

import hashlib
import io
import json
import tarfile
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.graphs.database import GraphDatabase
from repro.incremental import DatabaseDelta, PatternStore
from repro.replication import (
    PrimaryService,
    SegmentShipper,
    sign_manifest,
    verify_manifest,
)
from repro.streaming import ApplierOptions, IngestOptions, WriteAheadLog
from repro.taxonomy.builders import taxonomy_from_parent_names

ADD_ONE = "t # 0\nv 0 b\nv 1 c\ne 0 1 x\n"


def _delta(tag: str) -> DatabaseDelta:
    return DatabaseDelta(add_text=f"t # 0\nv 0 {tag}\n")


def _mine_store(tmp_path, names=("x", "x", "y")):
    taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a"})
    db = GraphDatabase(node_labels=taxonomy.interner)
    for name in names:
        db.new_graph(["b", "c"], [(0, 1, name)])
    store_dir = tmp_path / "store"
    Taxogram(
        TaxogramOptions(min_support=0.4, store_out=str(store_dir))
    ).mine(db, taxonomy)
    return store_dir


def _request(url, path, doc=None):
    if doc is None:
        req = urllib.request.Request(url + path)
    else:
        req = urllib.request.Request(
            url + path,
            json.dumps(doc).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


@pytest.fixture
def primary(tmp_path):
    store_dir = _mine_store(tmp_path)
    service = PrimaryService(
        store_dir,
        tmp_path / "wal",
        secret="hush",
        port=0,
        options=IngestOptions(max_lag_records=64, wait_timeout_seconds=60.0),
        applier_options=ApplierOptions(max_latency_seconds=0.02),
    )
    service.start()
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    host, port = service.address
    try:
        yield service, f"http://{host}:{port}"
    finally:
        service.server.shutdown()
        thread.join(timeout=10)
        service.close()


class TestManifest:
    def test_shape_watermark_and_versioning(self, tmp_path):
        _mine_store(tmp_path)
        with WriteAheadLog(tmp_path / "wal", segment_max_bytes=1) as wal:
            shipper = SegmentShipper(wal, tmp_path / "store")
            empty = shipper.manifest()
            assert empty["watermark"] == 0
            assert empty["earliest_seq"] == 0
            for d in [_delta("x"), _delta("y"), _delta("z")]:
                wal.append(d)
            doc = shipper.manifest()
            assert doc["watermark"] == 3
            # Shape changed, so the manifest version advanced.
            assert doc["manifest_version"] > empty["manifest_version"]
            again = shipper.manifest()
            assert again["manifest_version"] == doc["manifest_version"]
            # segment_max_bytes=1: every append seals its segment.
            sealed = [s for s in doc["segments"] if s["sealed"]]
            assert len(sealed) == 3
            for entry in sealed:
                assert len(entry["sha256"]) == 64
                data = wal.read_segment_chunk(
                    entry["start_seq"], 0, entry["bytes"]
                )
                assert hashlib.sha256(data).hexdigest() == entry["sha256"]

    def test_signature_roundtrip_and_tamper(self, tmp_path):
        _mine_store(tmp_path)
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(_delta("x"))
            shipper = SegmentShipper(wal, tmp_path / "store", secret="k1")
            doc = shipper.manifest()
        assert verify_manifest(doc, "k1")
        assert not verify_manifest(doc, "k2")
        forged = dict(doc)
        forged["watermark"] = 99
        assert not verify_manifest(forged, "k1")
        assert sign_manifest(forged, "k1") != doc["signature"]

    def test_unsigned_manifest_has_no_signature(self, tmp_path):
        _mine_store(tmp_path)
        with WriteAheadLog(tmp_path / "wal") as wal:
            shipper = SegmentShipper(wal, tmp_path / "store")
            assert "signature" not in shipper.manifest()


class TestSnapshot:
    def test_snapshot_restores_an_identical_store(self, tmp_path):
        store_dir = _mine_store(tmp_path)
        with WriteAheadLog(tmp_path / "wal") as wal:
            shipper = SegmentShipper(wal, store_dir)
            version, data = shipper.snapshot()
        restored = tmp_path / "restored"
        restored.mkdir()
        with tarfile.open(fileobj=io.BytesIO(data), mode="r:gz") as archive:
            archive.extractall(restored)
        # Byte-identical file set, and it opens checksum-clean.
        originals = {
            p.relative_to(store_dir): p.read_bytes()
            for p in store_dir.rglob("*")
            if p.is_file()
        }
        copies = {
            p.relative_to(restored): p.read_bytes()
            for p in restored.rglob("*")
            if p.is_file()
        }
        assert copies == originals
        store = PatternStore.open(restored)
        assert store.store_version == version


class TestPrimaryHTTP:
    def test_manifest_over_http_is_signed(self, primary):
        _service, url = primary
        status, body, _ = _request(url, "/replication/manifest")
        assert status == 200
        doc = json.loads(body)
        assert verify_manifest(doc, "hush")
        assert doc["watermark"] == 0

    def test_segment_bytes_follow_ingest(self, primary):
        service, url = primary
        for _ in range(3):
            status, body, _ = _request(
                url, "/ingest", {"add": ADD_ONE, "wait": True}
            )
            assert status == 200
        status, body, _ = _request(url, "/replication/manifest")
        doc = json.loads(body)
        assert doc["watermark"] == 3
        entry = doc["segments"][0]
        status, data, _ = _request(
            url,
            f"/replication/segment?start={entry['start_seq']}"
            f"&offset=0&length={entry['bytes']}",
        )
        assert status == 200
        assert len(data) == entry["bytes"]
        # The served bytes are exactly the on-disk segment prefix.
        on_disk = service.wal.read_segment_chunk(
            entry["start_seq"], 0, entry["bytes"]
        )
        assert data == on_disk

    def test_segment_errors_map_to_http_statuses(self, primary):
        _service, url = primary
        status, body, _ = _request(
            url, "/replication/segment?start=42&offset=0&length=10"
        )
        assert status == 404
        status, body, _ = _request(
            url, "/replication/segment?start=abc"
        )
        assert status == 400
        status, body, _ = _request(url, "/replication/nope")
        assert status == 404

    def test_snapshot_over_http_carries_version(self, primary):
        _service, url = primary
        status, data, headers = _request(url, "/replication/snapshot")
        assert status == 200
        assert int(headers["X-Store-Version"]) >= 1
        with tarfile.open(fileobj=io.BytesIO(data), mode="r:gz") as archive:
            assert "manifest.json" in archive.getnames()

    def test_health_reports_primary_role_and_liveness(self, primary):
        _service, url = primary
        status, body, _ = _request(url, "/health")
        doc = json.loads(body)
        assert doc["role"] == "primary"
        assert doc["applier_alive"] is True
        assert doc["journaled_seq"] == -1
        _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
        status, body, _ = _request(url, "/health")
        doc = json.loads(body)
        assert doc["applied_seq"] == 0
        assert doc["journaled_seq"] == 0
        assert doc["lag"] == 0
