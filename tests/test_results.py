"""Tests for result containers and rendering."""

from __future__ import annotations

from repro.core.results import (
    MiningCounters,
    TaxogramResult,
    TaxonomyPattern,
    format_pattern,
)
from repro.graphs.graph import Graph
from repro.mining.dfs_code import min_dfs_code
from repro.util.interner import LabelInterner


def _pattern(labels, edges, support_count=1, database_size=2):
    graph = Graph.from_edges(labels, edges)
    return TaxonomyPattern(
        code=min_dfs_code(graph),
        graph=graph,
        support_count=support_count,
        support=support_count / database_size,
        support_set=frozenset(range(support_count)),
        class_id=0,
    )


class TestTaxonomyPattern:
    def test_shape_properties(self):
        p = _pattern([1, 2, 3], [(0, 1), (1, 2)])
        assert p.num_nodes == 3
        assert p.num_edges == 2

    def test_sort_key_orders_by_size_then_code(self):
        small = _pattern([1, 2], [(0, 1)])
        large = _pattern([1, 2, 3], [(0, 1), (1, 2)])
        assert small.sort_key() < large.sort_key()


class TestTaxogramResult:
    def _result(self):
        patterns = [
            _pattern([1, 2, 3], [(0, 1), (1, 2)]),
            _pattern([1, 2], [(0, 1)]),
        ]
        return TaxogramResult(
            patterns=patterns,
            database_size=2,
            min_support=0.5,
            algorithm="taxogram",
            counters=MiningCounters(pattern_classes=2),
            stage_seconds={"relabel": 0.001, "mine_classes": 0.002,
                           "specialize": 0.003},
        )

    def test_patterns_sorted_on_construction(self):
        result = self._result()
        assert [p.num_edges for p in result] == [1, 2]

    def test_pattern_codes_view(self):
        result = self._result()
        codes = result.pattern_codes()
        assert len(codes) == 2
        for pattern in result:
            assert codes[pattern.code] == pattern.support_set

    def test_total_seconds_and_summary(self):
        result = self._result()
        assert abs(result.total_seconds - 0.006) < 1e-9
        summary = result.summary()
        assert "taxogram" in summary
        assert "2 patterns" in summary

    def test_counters_merge(self):
        a = MiningCounters(isomorphism_tests=2, memory_cells_peak=10)
        b = MiningCounters(isomorphism_tests=3, memory_cells_peak=7,
                           bitset_intersections=4)
        a.merge(b)
        assert a.isomorphism_tests == 5
        assert a.bitset_intersections == 4
        assert a.memory_cells_peak == 10  # max, not sum


class TestFormatPattern:
    def test_edge_labels_rendered_when_distinguishing(self):
        interner = LabelInterner(["n"])
        labeled = _pattern([0, 0], [(0, 1, 3)])
        assert "0-1:3" in format_pattern(labeled, interner)
        edge_interner = LabelInterner(["zero", "one", "two", "binds"])
        assert "0-1:binds" in format_pattern(labeled, interner, edge_interner)
        plain = _pattern([0, 0], [(0, 1)])
        text = format_pattern(plain, interner)
        assert "0-1" in text and "0-1:" not in text

    def test_renders_names_edges_and_support(self):
        interner = LabelInterner(["alpha", "beta"])
        p = _pattern([0, 1], [(0, 1)], support_count=1, database_size=2)
        text = format_pattern(p, interner)
        assert "alpha" in text
        assert "beta" in text
        assert "0-1" in text
        assert "sup=0.500" in text
