"""Tests for :mod:`repro.serving`: the concurrent store query engine.

Three layers:

* unit tests over a hand-built store whose classes, border and
  over-generalized patterns are known exactly — including the
  acceptance-criteria assertion that class-covered queries perform zero
  isomorphism tests;
* a property-based differential harness: every ``support()`` /
  ``graphs_matching()`` answer over randomized DAG / multi-root cases
  must equal a brute-force VF2 oracle, and ``contains()`` must equal
  membership in a fresh mining run — including over-generalized and
  sub-threshold patterns;
* concurrency: version fencing across :meth:`IncrementalTaxogram.apply`
  and an 8-thread mixed-query stress test (``RUN_SLOW=1``).
"""

from __future__ import annotations

import json
import random
import shutil
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions, mine
from repro.exceptions import MiningError, ReproError, StoreError, TaxonomyError
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.subgraphs import connected_edge_subgraphs
from repro.incremental import (
    DatabaseDelta,
    IncrementalTaxogram,
    PatternStore,
    fence_state,
)
from repro.isomorphism.vf2 import is_generalized_subgraph_isomorphic
from repro.mining.dfs_code import min_dfs_code
from repro.serving import (
    BatchExecutor,
    MatchResult,
    Query,
    StoreReader,
    VersionedResultCache,
    serve,
)
from repro.taxonomy.builders import taxonomy_from_parent_names
from tests.conftest import make_differential_case


def _taxonomy():
    # Multi-root on purpose: step 1 relabels to the most-general *real*
    # concepts (A, B, C), so the store has distinct per-root classes.
    return taxonomy_from_parent_names(
        {
            "A": [],
            "B": [],
            "C": [],
            "a1": "A",
            "a2": "A",
            "b1": "B",
            "b2": "B",
            "c1": "C",
        }
    )


def _database(tax):
    db = GraphDatabase(node_labels=tax.interner)
    # g0: triangle a1-b1-c1; g1: a1-b1; g2: a1-b2; g3: a1-c1.
    db.new_graph(["a1", "b1", "c1"], [(0, 1), (1, 2), (0, 2)])
    db.new_graph(["a1", "b1"], [(0, 1)])
    db.new_graph(["a1", "b2"], [(0, 1)])
    db.new_graph(["a1", "c1"], [(0, 1)])
    return db


def _pattern(tax, labels, edges):
    return Graph.from_edges([tax.id_of(name) for name in labels], edges)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """A mined store over the fixture database (sigma=0.5, max_edges=2).

    With ``min_count = 2``: classes A-B (support 3) and A-C (support 2);
    B-C (support 1) and the 2-edge B-A-C path (support 1) sit on the
    negative border with exact graph-id sets.  Every A in an A-B / A-C
    occurrence is an ``a1``, so both class patterns are over-generalized
    (their ``a1`` specialization has equal support).
    """
    directory = tmp_path_factory.mktemp("serving") / "store"
    tax = _taxonomy()
    db = _database(tax)
    Taxogram(
        TaxogramOptions(min_support=0.5, max_edges=2, store_out=str(directory))
    ).mine(db, tax)
    return directory


@pytest.fixture
def reader(store_dir):
    return StoreReader(store_dir)


@pytest.fixture
def tax(reader):
    # The reader's own taxonomy instance, so label ids line up.
    return reader._state.store.taxonomy


class TestSupport:
    def test_class_pattern_exact(self, reader, tax):
        assert reader.support(_pattern(tax, ["A", "B"], [(0, 1)])) == 3
        assert reader.support(_pattern(tax, ["A", "C"], [(0, 1)])) == 2

    def test_specialized_pattern_exact(self, reader, tax):
        assert reader.support(_pattern(tax, ["a1", "b1"], [(0, 1)])) == 2
        assert reader.support(_pattern(tax, ["a1", "B"], [(0, 1)])) == 3

    def test_never_materialized_overgeneralized_pattern(self, reader, tax):
        # A-B is over-generalized (a1-B has equal support), so it was
        # never emitted by mining — its support is still answered
        # exactly from the class bit-sets.
        mined = {
            p.code
            for p in mine(
                reader._state.store.database,
                tax,
                min_support=0.5,
                max_edges=2,
            )
        }
        query = _pattern(tax, ["A", "B"], [(0, 1)])
        assert min_dfs_code(query) not in mined
        assert reader.support(query) == 3

    def test_subthreshold_inside_class_exact(self, reader, tax):
        # a1-b2 occurs only in g2: below min_count=2, never mined,
        # still exact.
        assert reader.support(_pattern(tax, ["a1", "b2"], [(0, 1)])) == 1
        assert reader.support(_pattern(tax, ["a2", "b1"], [(0, 1)])) == 0

    def test_border_structure_exact_subthreshold(self, reader, tax):
        # B-C is infrequent (only g0): its negative-border entry gives
        # the exact graph set with no isomorphism tests.
        assert reader.support(_pattern(tax, ["B", "C"], [(0, 1)])) == 1
        assert reader.metrics.counter("serving.vf2_tests") == 0
        match = reader.graphs_matching(_pattern(tax, ["B", "C"], [(0, 1)]))
        assert match.path == "border"
        assert match.graph_ids == frozenset({0})

    def test_border_specialized_uses_restricted_vf2(self, reader, tax):
        query = _pattern(tax, ["b1", "c1"], [(0, 1)])
        assert reader.support(query) == 1
        match = reader.graphs_matching(query)
        assert match.path == "vf2-border"
        # Each of the two queries tested only the single border
        # candidate graph, not all four database graphs.
        assert reader.metrics.counter("serving.vf2_tests") == 2

    def test_beyond_cap_falls_back_to_full_vf2(self, reader, tax):
        triangle = _pattern(
            tax, ["A", "B", "C"], [(0, 1), (1, 2), (0, 2)]
        )
        match = reader.graphs_matching(triangle)
        assert match.path == "vf2"
        assert match.graph_ids == frozenset({0})
        assert reader.metrics.counter("serving.vf2_fallbacks") == 1
        assert reader.metrics.counter("serving.vf2_tests") == 4

    def test_single_node_label_scan(self, reader, tax):
        assert reader.support(_pattern(tax, ["A"], [])) == 4
        assert reader.support(_pattern(tax, ["b2"], [])) == 1
        assert reader.support(_pattern(tax, ["B"], [])) == 3
        assert reader.metrics.counter("serving.vf2_tests") == 0

    def test_hot_path_performs_zero_isomorphism_tests(self, reader, tax):
        """Acceptance criterion: class-covered queries never call VF2."""
        reader.support(_pattern(tax, ["A", "B"], [(0, 1)]))
        reader.support(_pattern(tax, ["a1", "b1"], [(0, 1)]))
        reader.contains(_pattern(tax, ["a1", "B"], [(0, 1)]))
        reader.specializations(_pattern(tax, ["A", "C"], [(0, 1)]))
        reader.graphs_matching(_pattern(tax, ["a1", "c1"], [(0, 1)]))
        reader.top_k(10)
        counters = reader.metrics.as_dict()["counters"]
        assert counters.get("serving.vf2_tests", 0) == 0
        assert counters.get("serving.vf2_fallbacks", 0) == 0
        assert counters["serving.bitset_queries"] >= 5
        assert counters["serving.bitset_intersections"] > 0


class TestContains:
    def test_mined_patterns_contained(self, reader, tax):
        assert reader.contains(_pattern(tax, ["a1", "B"], [(0, 1)]))
        assert reader.contains(_pattern(tax, ["a1", "b1"], [(0, 1)]))
        assert reader.contains(_pattern(tax, ["a1", "c1"], [(0, 1)]))

    def test_overgeneralized_not_contained(self, reader, tax):
        # Frequent but over-generalized: a specialization matches every
        # occurrence (every A here is an a1; every C is a c1).
        assert not reader.contains(_pattern(tax, ["A", "B"], [(0, 1)]))
        assert not reader.contains(_pattern(tax, ["A", "C"], [(0, 1)]))
        assert not reader.contains(_pattern(tax, ["a1", "C"], [(0, 1)]))

    def test_infrequent_not_contained(self, reader, tax):
        assert not reader.contains(_pattern(tax, ["a1", "b2"], [(0, 1)]))
        assert not reader.contains(_pattern(tax, ["B", "C"], [(0, 1)]))

    def test_single_node_not_contained(self, reader, tax):
        assert not reader.contains(_pattern(tax, ["A"], []))

    def test_matches_fresh_mining_exactly(self, reader, tax):
        mined = {
            p.code
            for p in mine(
                reader._state.store.database,
                tax,
                min_support=0.5,
                max_edges=2,
            )
        }
        for labels in (
            ["A", "B"], ["a1", "B"], ["a1", "b1"], ["a1", "b2"],
            ["A", "C"], ["a1", "C"], ["a1", "c1"], ["B", "C"],
            ["a2", "b1"], ["b1", "c1"],
        ):
            query = _pattern(tax, labels, [(0, 1)])
            assert reader.contains(query) == (min_dfs_code(query) in mined)


class TestGraphsMatching:
    def test_graph_ids_and_occurrences(self, reader, tax):
        match = reader.graphs_matching(_pattern(tax, ["a1", "b1"], [(0, 1)]))
        assert isinstance(match, MatchResult)
        assert match.graph_ids == frozenset({0, 1})
        assert match.support_count == 2
        assert match.path == "bitset"
        assert match.occurrences is not None
        assert {gid for gid, _nodes in match.occurrences} == {0, 1}
        for gid, nodes in match.occurrences:
            db = reader._state.store.database
            labels = {tax.name_of(db[gid].node_label(v)) for v in nodes}
            assert labels == {"a1", "b1"}

    def test_empty_match(self, reader, tax):
        match = reader.graphs_matching(_pattern(tax, ["a2", "c1"], [(0, 1)]))
        assert match.graph_ids == frozenset()
        assert match.support_count == 0
        assert match.occurrences == ()


class TestSpecializations:
    def test_matches_fresh_mining_for_class(self, reader, tax):
        mined = mine(
            reader._state.store.database, tax, min_support=0.5, max_edges=2
        )
        expected = {
            p.code: p.support_set
            for p in mined
            if p.num_edges == 1
            and {tax.name_of(p.graph.node_label(v)) for v in p.graph.nodes()}
            & {"B", "b1", "b2"}
        }
        specs = reader.specializations(_pattern(tax, ["A", "B"], [(0, 1)]))
        assert {p.code: p.support_set for p in specs} == expected

    def test_sorted_by_support(self, reader, tax):
        specs = reader.specializations(_pattern(tax, ["A", "B"], [(0, 1)]))
        supports = [p.support_count for p in specs]
        assert supports == sorted(supports, reverse=True)

    def test_subthreshold_inside_class(self, reader, tax):
        specs = reader.specializations(
            _pattern(tax, ["A", "B"], [(0, 1)]), min_support=0.25
        )
        names = {
            tuple(
                sorted(
                    tax.name_of(p.graph.node_label(v))
                    for v in p.graph.nodes()
                )
            )
            for p in specs
        }
        assert ("a1", "b2") in names  # support 1 < sigma, still exact

    def test_restricted_base_labels(self, reader, tax):
        specs = reader.specializations(_pattern(tax, ["a1", "B"], [(0, 1)]))
        for p in specs:
            names = {
                tax.name_of(p.graph.node_label(v)) for v in p.graph.nodes()
            }
            assert "a2" not in names and "A" not in names

    def test_infrequent_structure_at_or_above_sigma_is_empty(
        self, reader, tax
    ):
        assert reader.specializations(_pattern(tax, ["B", "C"], [(0, 1)])) == []

    def test_subthreshold_outside_class_raises(self, reader, tax):
        with pytest.raises(MiningError, match="min_support"):
            reader.specializations(
                _pattern(tax, ["B", "C"], [(0, 1)]), min_support=0.1
            )

    def test_beyond_edge_cap_raises(self, reader, tax):
        with pytest.raises(MiningError, match="max_edges"):
            reader.specializations(
                _pattern(tax, ["A", "B", "C"], [(0, 1), (1, 2), (0, 2)])
            )

    def test_single_node_raises(self, reader, tax):
        with pytest.raises(MiningError, match="at least one edge"):
            reader.specializations(_pattern(tax, ["A"], []))


class TestTopK:
    def test_matches_fresh_mining(self, reader, tax):
        mined = mine(
            reader._state.store.database, tax, min_support=0.5, max_edges=2
        )
        top = reader.top_k(len(mined) + 5)
        assert len(top) == len(mined)
        assert {p.code: p.support_set for p in top} == {
            p.code: p.support_set for p in mined
        }
        supports = [p.support_count for p in top]
        assert supports == sorted(supports, reverse=True)

    def test_k_truncates(self, reader):
        assert len(reader.top_k(1)) == 1
        assert reader.top_k(0) == []

    def test_label_filter(self, reader, tax):
        only_c = reader.top_k(10, label_filter="C")
        assert only_c
        for p in only_c:
            names = {
                tax.name_of(p.graph.node_label(v)) for v in p.graph.nodes()
            }
            assert names & {"C", "c1"}
        assert len(only_c) < len(reader.top_k(10))

    def test_unknown_filter_label_raises(self, reader):
        with pytest.raises(TaxonomyError):
            reader.top_k(3, label_filter="no_such_concept")

    def test_negative_k_raises(self, reader):
        with pytest.raises(MiningError):
            reader.top_k(-1)


class TestValidation:
    def test_unknown_label_raises(self, reader, tax):
        stray = tax.interner.intern("not_a_concept")
        with pytest.raises(TaxonomyError, match="not_a_concept"):
            reader.support(Graph.from_edges([stray, tax.id_of("B")], [(0, 1)]))

    def test_disconnected_pattern_raises(self, reader, tax):
        query = Graph.from_edges(
            [tax.id_of("A"), tax.id_of("B"), tax.id_of("C")], [(0, 1)]
        )
        with pytest.raises(MiningError):
            reader.support(query)

    def test_unknown_op_raises(self, reader, tax):
        with pytest.raises(MiningError, match="unknown query op"):
            reader.query("explode", _pattern(tax, ["A", "B"], [(0, 1)]))

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(StoreError):
            StoreReader(tmp_path / "nope")


class TestCache:
    def test_repeat_query_hits_cache(self, reader, tax):
        query = _pattern(tax, ["A", "B"], [(0, 1)])
        first = reader.query("support", query)
        second = reader.query("support", query)
        assert not first.cached and second.cached
        assert first.value == second.value == 3
        assert reader.metrics.counter("serving.cache_hits") == 1

    def test_automorphic_phrasings_share_entry(self, reader, tax):
        reader.query("support", _pattern(tax, ["A", "B"], [(0, 1)]))
        flipped = reader.query("support", _pattern(tax, ["B", "A"], [(0, 1)]))
        assert flipped.cached  # same canonical DFS code

    def test_lru_eviction(self):
        cache = VersionedResultCache(maxsize=2)
        cache.put(1, "a", 1)
        cache.put(1, "b", 2)
        assert cache.get(1, "a") == 1  # refresh "a"
        cache.put(1, "c", 3)  # evicts "b"
        assert cache.is_miss(cache.get(1, "b"))
        assert cache.get(1, "a") == 1
        assert len(cache) == 2

    def test_versioned_keys_do_not_collide(self):
        cache = VersionedResultCache()
        cache.put(1, "k", "old")
        cache.put(2, "k", "new")
        assert cache.get(1, "k") == "old"
        assert cache.get(2, "k") == "new"
        cache.clear()
        assert cache.is_miss(cache.get(2, "k"))


class TestVersionFencing:
    @pytest.fixture
    def live_store(self, store_dir, tmp_path):
        directory = tmp_path / "live"
        shutil.copytree(store_dir, directory)
        return directory

    def test_fence_state_reports_version_and_stability(self, live_store):
        version, stable = fence_state(live_store)
        assert version == 1 and stable
        (live_store / "update.inprogress").touch()
        version, stable = fence_state(live_store)
        assert version == 1 and not stable
        assert fence_state(live_store / "missing") == (None, False)

    def test_reader_survives_incremental_update(self, live_store):
        tax = _taxonomy()
        reader = StoreReader(live_store)
        query = _pattern(tax, ["a1", "b1"], [(0, 1)])
        before = reader.query("support", query)
        assert before.value == 2 and before.store_version == 1

        IncrementalTaxogram(str(live_store)).apply(DatabaseDelta.removing([1]))

        after = reader.query("support", query)
        assert after.store_version == 2
        assert not after.cached  # version bump invalidated the cache
        assert after.value == 1  # g1 removed
        assert reader.version == 2
        assert reader.metrics.counter("serving.reloads") == 2

    def test_update_invalidates_whole_cache(self, live_store):
        tax = _taxonomy()
        reader = StoreReader(live_store)
        queries = [
            _pattern(tax, ["A", "B"], [(0, 1)]),
            _pattern(tax, ["A", "C"], [(0, 1)]),
        ]
        for query in queries:
            reader.query("support", query)
            assert reader.query("support", query).cached

        IncrementalTaxogram(str(live_store)).apply(DatabaseDelta.removing([3]))

        for query in queries:
            assert not reader.query("support", query).cached

    def test_reader_blocks_out_while_marker_present(self, live_store):
        reader = StoreReader(live_store, max_retries=3, retry_wait=0.001)
        tax = _taxonomy()
        query = _pattern(tax, ["A", "B"], [(0, 1)])
        assert reader.support(query) == 3
        # A marker alone (no version bump) must not force a reload: the
        # loaded snapshot is still the latest committed version.
        (live_store / "update.inprogress").touch()
        try:
            answer = reader.query("support", query)
            assert answer.value == 3
            assert answer.store_version == 1
        finally:
            (live_store / "update.inprogress").unlink()


class TestBatchExecutor:
    def test_results_in_input_order_with_errors(self, reader, tax):
        stray = tax.interner.intern("stray_label")
        queries = [
            Query("support", _pattern(tax, ["A", "B"], [(0, 1)])),
            Query("contains", _pattern(tax, ["a1", "b1"], [(0, 1)])),
            Query("support", Graph.from_edges([stray], [])),
            Query("top_k", k=2),
            Query("graphs", _pattern(tax, ["A", "C"], [(0, 1)])),
        ]
        results = BatchExecutor(reader, max_workers=3).run(queries)
        assert len(results) == 5
        assert results[0].value == 3
        assert results[1].value is True
        assert isinstance(results[2], ReproError)
        assert len(results[3].value) == 2
        assert results[4].value.graph_ids == frozenset({0, 3})

    def test_missing_pattern_is_an_error_result(self, reader):
        results = BatchExecutor(reader).run([Query("support")])
        assert isinstance(results[0], ReproError)

    def test_empty_batch(self, reader):
        assert BatchExecutor(reader).run([]) == []

    def test_unexpected_exception_is_isolated_and_wrapped(self, reader, tax):
        """A non-``ReproError`` escaping one query must not abandon the
        rest of its group (regression: it used to propagate through
        ``future.result()`` and leave ``None`` slots)."""

        class ExplodingReader:
            def class_key(self, pattern):
                return reader.class_key(pattern)

            def query(self, op, pattern=None, **kwargs):
                if op == "boom":
                    raise RuntimeError("disk on fire")
                return reader.query(op, pattern, **kwargs)

        results = BatchExecutor(ExplodingReader()).run(
            [Query("top_k", k=2),
             Query("boom", _pattern(tax, ["A", "B"], [(0, 1)])),
             Query("top_k", k=1)]
        )
        assert len(results[0].value) == 2
        assert len(results[2].value) == 1
        error = results[1]
        assert isinstance(error, ReproError)
        assert "query failed" in str(error)
        assert isinstance(error.__cause__, RuntimeError)

    def test_unexpected_exception_in_grouping_is_wrapped(self, reader, tax):
        class ExplodingKeyReader:
            def class_key(self, pattern):
                raise RuntimeError("index corrupted")

            def query(self, op, pattern=None, **kwargs):
                return reader.query(op, pattern, **kwargs)

        results = BatchExecutor(ExplodingKeyReader()).run(
            [Query("support", _pattern(tax, ["A", "B"], [(0, 1)])),
             Query("top_k", k=2)]
        )
        assert isinstance(results[0], ReproError)
        assert isinstance(results[0].__cause__, RuntimeError)
        assert len(results[1].value) == 2


class TestHTTPServer:
    @pytest.fixture
    def server(self, store_dir):
        server = serve(store_dir, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def _get(self, server, path):
        host, port = server.server_address[:2]
        try:
            with urllib.request.urlopen(
                f"http://{host}:{port}{path}"
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def _post(self, server, path, doc):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(doc).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_health(self, server):
        status, doc = self._get(server, "/health")
        assert status == 200
        assert doc["store_version"] == 1
        assert doc["database_size"] == 4

    def test_query_support(self, server):
        status, doc = self._post(
            server,
            "/query",
            {"op": "support", "pattern": "t # 0\nv 0 A\nv 1 B\ne 0 1 -\n"},
        )
        assert status == 200
        assert doc["value"] == 3

    def test_query_graphs(self, server):
        status, doc = self._post(
            server,
            "/query",
            {"op": "graphs", "pattern": "t # 0\nv 0 a1\nv 1 b1\ne 0 1 -\n"},
        )
        assert status == 200
        assert doc["value"]["graph_ids"] == [0, 1]
        assert doc["value"]["path"] == "bitset"

    def test_top_endpoint(self, server):
        status, doc = self._get(server, "/top?k=2")
        assert status == 200
        assert len(doc["value"]) == 2
        assert doc["value"][0]["support_count"] >= doc["value"][1][
            "support_count"
        ]

    def test_metrics_endpoint(self, server):
        self._post(
            server,
            "/query",
            {"op": "support", "pattern": "t # 0\nv 0 A\nv 1 B\ne 0 1 -\n"},
        )
        status, doc = self._get(server, "/metrics")
        assert status == 200
        assert doc["counters"]["serving.queries"] >= 1

    def test_bad_pattern_is_400(self, server):
        status, doc = self._post(
            server,
            "/query",
            {"op": "support", "pattern": "t # 0\nv 0 no_such\n"},
        )
        assert status == 400
        assert "no_such" in doc["error"]

    def test_malformed_body_is_400(self, server):
        status, _doc = self._post(server, "/query", {"op": "support"})
        assert status == 400

    def test_unknown_path_is_404(self, server):
        status, _doc = self._get(server, "/nope")
        assert status == 404

    def test_concurrent_requests(self, server):
        payload = {"op": "support", "pattern": "t # 0\nv 0 A\nv 1 B\ne 0 1 -\n"}
        values = []
        def hit():
            values.append(self._post(server, "/query", payload)[1]["value"])
        threads = [threading.Thread(target=hit) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert values == [3] * 6


# -- property-based differential harness ---------------------------------------


def _oracle_graph_ids(pattern, database, taxonomy):
    return frozenset(
        graph.graph_id
        for graph in database
        if is_generalized_subgraph_isomorphic(pattern, graph, taxonomy)
    )


def _query_universe(database, taxonomy, rng, cap):
    """Deduped query patterns: occurring subgraphs, random ancestor
    generalizations of them, and random (often non-occurring) relabelings
    of their structures."""
    all_labels = sorted(taxonomy.labels())
    seen: dict[tuple, Graph] = {}
    for graph in database:
        for sub, _mapping in connected_edge_subgraphs(graph, 2):
            generalized = sub.copy()
            for v in generalized.nodes():
                ancestors = sorted(
                    taxonomy.ancestors_or_self(generalized.node_label(v))
                )
                generalized.relabel_node(v, rng.choice(ancestors))
            scrambled = sub.copy()
            for v in scrambled.nodes():
                scrambled.relabel_node(v, rng.choice(all_labels))
            for candidate in (sub, generalized, scrambled):
                code = min_dfs_code(candidate)
                if code.edges not in seen:
                    seen[code.edges] = candidate
    universe = list(seen.values())
    rng.shuffle(universe)
    return universe[:cap]


def _check_seed(seed, tmp_path, cap=40):
    database, taxonomy, sigma = make_differential_case(seed)
    directory = tmp_path / f"store{seed}"
    Taxogram(
        TaxogramOptions(
            min_support=sigma, max_edges=2, store_out=str(directory)
        )
    ).mine(database, taxonomy)
    mined_codes = {
        p.code
        for p in mine(database, taxonomy, min_support=sigma, max_edges=2)
    }
    reader = StoreReader(directory)
    rng = random.Random(seed * 7919 + 17)
    for pattern in _query_universe(database, taxonomy, rng, cap):
        expected = _oracle_graph_ids(pattern, database, taxonomy)
        label = f"seed={seed} pattern={min_dfs_code(pattern).edges}"
        assert reader.support(pattern) == len(expected), label
        match = reader.graphs_matching(pattern)
        assert match.graph_ids == expected, label
        assert reader.contains(pattern) == (
            min_dfs_code(pattern) in mined_codes
        ), label


class TestDifferential:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 6, 9])
    def test_reader_matches_vf2_oracle(self, seed, tmp_path):
        _check_seed(seed, tmp_path)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", list(range(10, 50)))
    def test_reader_matches_vf2_oracle_wide(self, seed, tmp_path):
        _check_seed(seed, tmp_path, cap=80)


# -- concurrency stress ---------------------------------------------------------


@pytest.mark.slow
class TestConcurrencyStress:
    def test_eight_threads_during_incremental_update(self, tmp_path):
        """8 threads of mixed queries against one StoreReader while an
        IncrementalTaxogram applies a delta to the same directory: every
        answer must be consistent with the pre- or post-update version
        (no torn reads, no stale cache)."""
        tax = _taxonomy()
        database = _database(tax)
        directory = tmp_path / "store"
        Taxogram(
            TaxogramOptions(
                min_support=0.5, max_edges=2, store_out=str(directory)
            )
        ).mine(database, tax)
        delta = DatabaseDelta.removing([1])

        queries = [
            ("support", _pattern(tax, ["A", "B"], [(0, 1)])),
            ("support", _pattern(tax, ["a1", "b1"], [(0, 1)])),
            ("contains", _pattern(tax, ["a1", "C"], [(0, 1)])),
            ("graphs", _pattern(tax, ["A", "C"], [(0, 1)])),
            ("support", _pattern(tax, ["B", "C"], [(0, 1)])),
        ]

        def normalize(op, value):
            return value.graph_ids if op == "graphs" else value

        def snapshot(snap_reader):
            return [
                normalize(op, snap_reader.query(op, pattern).value)
                for op, pattern in queries
            ]

        # Expected answers for both versions, computed on copies.
        pre_copy = tmp_path / "pre"
        shutil.copytree(directory, pre_copy)
        pre_reader = StoreReader(pre_copy)
        v_pre = pre_reader.version
        expected = {v_pre: snapshot(pre_reader)}
        post_copy = tmp_path / "post"
        shutil.copytree(directory, post_copy)
        IncrementalTaxogram(str(post_copy)).apply(delta)
        post_reader = StoreReader(post_copy)
        v_post = post_reader.version
        expected[v_post] = snapshot(post_reader)
        assert v_post == v_pre + 1
        assert expected[v_pre] != expected[v_post]  # the delta is visible

        reader = StoreReader(directory, max_retries=500, retry_wait=0.002)
        observations: list[tuple[int, int, object]] = []
        failures: list[BaseException] = []
        stop = threading.Event()

        def worker(worker_id: int) -> None:
            rng = random.Random(worker_id)
            while not stop.is_set():
                index = rng.randrange(len(queries))
                op, pattern = queries[index]
                try:
                    answer = reader.query(op, pattern)
                    observations.append(
                        (
                            index,
                            answer.store_version,
                            normalize(op, answer.value),
                        )
                    )
                except BaseException as exc:  # noqa: BLE001 - recorded
                    failures.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        IncrementalTaxogram(str(directory)).apply(delta)
        time.sleep(0.1)
        stop.set()
        for thread in threads:
            thread.join()

        assert not failures, failures[:3]
        assert observations
        versions_seen = {version for _i, version, _v in observations}
        assert versions_seen <= {v_pre, v_post}
        for index, version, value in observations:
            assert value == expected[version][index], (
                f"query {index} returned {value!r} at version {version}"
            )

        # After the update the reader converges to the new version.
        final = reader.query(*queries[0])
        assert final.store_version == v_post
        assert normalize("support", final.value) == expected[v_post][0]
