"""Focused error-path and scheduling tests for the batch executor.

Complements the ordering/isolation tests in ``test_serving.py``: what
happens when *every* slot fails, when the pool is forced down to one
worker, that distinct pattern classes genuinely overlap on the pool,
and that a failing group never abandons the other groups' slots.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.exceptions import ReproError
from repro.graphs.database import GraphDatabase
from repro.serving import BatchExecutor, Query, StoreReader
from repro.taxonomy.builders import taxonomy_from_parent_names

AB = "t # 0\nv 0 A\nv 1 B\ne 0 1 e\n"


@pytest.fixture
def reader(tmp_path):
    tax = taxonomy_from_parent_names(
        {"A": [], "B": [], "a1": "A", "a2": "A", "b1": "B"}
    )
    db = GraphDatabase(node_labels=tax.interner)
    db.new_graph(["a1", "b1"], [(0, 1, "e")])
    db.new_graph(["a2", "b1"], [(0, 1, "e")])
    db.new_graph(["a1", "a2"], [(0, 1, "e")])
    store = tmp_path / "store"
    Taxogram(
        TaxogramOptions(min_support=0.5, store_out=str(store))
    ).mine(db, tax)
    return StoreReader(store)


class TestAllErrorBatch:
    def test_every_slot_fails_independently(self, reader):
        pattern = reader.parse_pattern(AB)
        results = BatchExecutor(reader).run(
            [
                Query("support"),  # missing pattern
                Query("definitely_not_an_op", pattern),
                Query("top_k"),  # top_k without k
            ]
        )
        assert len(results) == 3
        assert all(isinstance(r, ReproError) for r in results)

    def test_unknown_label_fails_at_query_not_batch(self, reader):
        """Parsing interns the stray label; the *query* slot errors."""
        stray = reader.parse_pattern("t # 0\nv 0 not_a_concept\n")
        good = reader.parse_pattern(AB)
        results = BatchExecutor(reader).run(
            [Query("support", stray), Query("support", good)]
        )
        assert isinstance(results[0], ReproError)
        assert "not_a_concept" in str(results[0])
        assert results[1].value == 2


class TestScheduling:
    def test_single_worker_still_answers_everything(self, reader):
        pattern = reader.parse_pattern(AB)
        queries = [Query("support", pattern), Query("top_k", k=1)] * 4
        results = BatchExecutor(reader, max_workers=1).run(queries)
        assert len(results) == 8
        assert not any(isinstance(r, ReproError) for r in results)

    def test_distinct_classes_overlap_on_the_pool(self, reader):
        """Two groups must be in flight at once when workers allow."""
        barrier = threading.Barrier(2, timeout=30)
        inner = reader

        class RendezvousReader:
            def class_key(self, pattern):
                return inner.class_key(pattern)

            def query(self, op, pattern=None, **kwargs):
                # Both groups must reach this point concurrently or
                # the barrier times out and the test fails loudly.
                barrier.wait()
                return inner.query(op, pattern, **kwargs)

        pattern = reader.parse_pattern(AB)
        results = BatchExecutor(RendezvousReader(), max_workers=2).run(
            [Query("support", pattern), Query("top_k", k=1)]
        )
        assert not any(isinstance(r, ReproError) for r in results)

    def test_group_failure_leaves_other_groups_answered(self, reader):
        inner = reader

        class HalfBrokenReader:
            def class_key(self, pattern):
                return inner.class_key(pattern)

            def query(self, op, pattern=None, **kwargs):
                if op == "top_k":
                    raise OSError("store directory vanished")
                return inner.query(op, pattern, **kwargs)

        pattern = reader.parse_pattern(AB)
        results = BatchExecutor(HalfBrokenReader()).run(
            [Query("top_k", k=1), Query("support", pattern),
             Query("top_k", k=2)]
        )
        assert isinstance(results[0], ReproError)
        assert isinstance(results[0].__cause__, OSError)
        assert isinstance(results[2], ReproError)
        assert results[1].value == 2

    def test_results_align_with_interleaved_groups(self, reader):
        """Slot alignment survives arbitrary group interleavings."""
        pattern = reader.parse_pattern(AB)
        queries = []
        for index in range(12):
            if index % 3 == 0:
                queries.append(Query("top_k", k=1 + index % 2))
            elif index % 3 == 1:
                queries.append(Query("support", pattern))
            else:
                queries.append(Query("support"))  # always an error
        results = BatchExecutor(reader, max_workers=3).run(queries)
        for index, result in enumerate(results):
            if index % 3 == 0:
                # The miniature store holds one pattern, so top_k
                # returns it regardless of k.
                assert 1 <= len(result.value) <= 1 + index % 2
            elif index % 3 == 1:
                assert result.value == 2
            else:
                assert isinstance(result, ReproError)
