"""Unit tests for :class:`repro.serving.cache.VersionedResultCache`.

The serving layer leans on this cache under concurrency (every handler
thread shares one instance, and the ingest applier's version bumps call
``clear`` while queries are in flight), so beyond the LRU/versioning
semantics these tests race gets and puts against wholesale clears.
"""

from __future__ import annotations

import threading

from repro.serving.cache import VersionedResultCache


class TestSemantics:
    def test_miss_then_hit(self):
        cache = VersionedResultCache()
        assert cache.is_miss(cache.get(1, "k"))
        cache.put(1, "k", 42)
        assert cache.get(1, "k") == 42
        assert len(cache) == 1

    def test_versions_do_not_collide(self):
        cache = VersionedResultCache()
        cache.put(1, "k", "old")
        cache.put(2, "k", "new")
        assert cache.get(1, "k") == "old"
        assert cache.get(2, "k") == "new"

    def test_none_is_a_cacheable_value(self):
        cache = VersionedResultCache()
        cache.put(1, "k", None)
        value = cache.get(1, "k")
        assert value is None
        assert not cache.is_miss(value)

    def test_clear_invalidates_everything(self):
        cache = VersionedResultCache()
        for key in range(5):
            cache.put(1, key, key)
        cache.clear()
        assert len(cache) == 0
        assert cache.is_miss(cache.get(1, 0))

    def test_lru_eviction_order(self):
        cache = VersionedResultCache(maxsize=2)
        cache.put(1, "a", 1)
        cache.put(1, "b", 2)
        assert cache.get(1, "a") == 1  # refresh "a"; "b" is now oldest
        cache.put(1, "c", 3)
        assert cache.is_miss(cache.get(1, "b"))
        assert cache.get(1, "a") == 1
        assert cache.get(1, "c") == 3

    def test_overwrite_does_not_grow(self):
        cache = VersionedResultCache(maxsize=2)
        for _ in range(5):
            cache.put(1, "k", "v")
        assert len(cache) == 1


class TestDegenerateCapacity:
    def test_capacity_zero_clamps_to_one(self):
        cache = VersionedResultCache(maxsize=0)
        cache.put(1, "a", 1)
        assert cache.get(1, "a") == 1
        cache.put(1, "b", 2)
        assert len(cache) == 1
        assert cache.is_miss(cache.get(1, "a"))
        assert cache.get(1, "b") == 2

    def test_negative_capacity_clamps_to_one(self):
        cache = VersionedResultCache(maxsize=-7)
        cache.put(1, "a", 1)
        cache.put(1, "b", 2)
        assert len(cache) == 1


class TestConcurrency:
    def test_racing_puts_gets_and_clears(self):
        """Hammer one cache from reader threads while a "version bump"
        thread clears it; no exception, and every surviving entry is one
        a writer actually put."""
        cache = VersionedResultCache(maxsize=64)
        errors = []
        stop = threading.Event()

        def reader_writer(worker):
            try:
                for i in range(2000):
                    key = (worker, i % 50)
                    cache.put(worker, key, (worker, i))
                    value = cache.get(worker, key)
                    if not cache.is_miss(value):
                        assert value[0] == worker
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        def clearer():
            try:
                while not stop.is_set():
                    cache.clear()
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        workers = [
            threading.Thread(target=reader_writer, args=(n,))
            for n in range(4)
        ]
        bump = threading.Thread(target=clearer)
        bump.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        bump.join()
        assert errors == []
        assert len(cache) <= 64

    def test_concurrent_eviction_respects_capacity(self):
        cache = VersionedResultCache(maxsize=8)
        threads = [
            threading.Thread(
                target=lambda n=n: [
                    cache.put(n, i, i) for i in range(500)
                ]
            )
            for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 8
