"""Hypothesis properties for session quota accounting (ISSUE.md, PR 10).

Two safety properties the session tier depends on:

* **never over-admit** — whatever interleaving of acquires and releases
  a tenant mix produces, no ledger counter ever exceeds its configured
  budget, and a rejected acquire mutates nothing (no partial
  admission of an examples batch);
* **eviction releases everything** — releasing exactly what was
  acquired returns the accountant to idle, and at the manager level a
  TTL sweep releases every resource the evicted sessions held,
  including their share of the per-tenant example budget.

Both are driven by randomized operation sequences, the second also
through :class:`~repro.sessions.manager.SessionManager` with an
injectable clock so expiry is deterministic.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.taxogram import Taxogram, TaxogramOptions  # noqa: E402
from repro.sessions import (  # noqa: E402
    QuotaAccountant,
    QuotaExceeded,
    SessionManager,
    TenantQuotas,
)
from tests.test_sessions import (  # noqa: E402
    EXAMPLE,
    FakeClock,
    _database,
    _taxonomy,
)

TENANTS = ("t0", "t1", "t2")

quotas_strategy = st.builds(
    TenantQuotas,
    max_sessions=st.integers(min_value=1, max_value=4),
    max_concurrent_mines=st.integers(min_value=1, max_value=3),
    max_examples=st.integers(min_value=1, max_value=6),
    max_example_edges=st.integers(min_value=1, max_value=20),
)

# One abstract operation: (kind, tenant index, count, edges).  Release
# operations are interpreted against what the model still holds, so
# every generated sequence is legal by construction.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "acquire_session", "release_session",
                "acquire_mine", "release_mine",
                "acquire_examples", "release_examples",
            ]
        ),
        st.integers(min_value=0, max_value=len(TENANTS) - 1),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=8),
    ),
    max_size=60,
)


class _Model:
    """What the test believes each tenant holds."""

    def __init__(self) -> None:
        self.sessions = {t: 0 for t in TENANTS}
        self.mines = {t: 0 for t in TENANTS}
        self.examples = {t: [] for t in TENANTS}  # list of (count, edges)


@settings(max_examples=120, deadline=None)
@given(quotas=quotas_strategy, ops=ops_strategy)
def test_never_over_admit_and_full_release_restores_idle(quotas, ops):
    accountant = QuotaAccountant(quotas)
    model = _Model()

    for kind, tenant_index, count, edges in ops:
        tenant = TENANTS[tenant_index]
        if kind == "acquire_session":
            try:
                accountant.acquire_session(tenant)
                model.sessions[tenant] += 1
            except QuotaExceeded:
                assert model.sessions[tenant] >= quotas.max_sessions
        elif kind == "release_session":
            if model.sessions[tenant] > 0:
                accountant.release_session(tenant)
                model.sessions[tenant] -= 1
        elif kind == "acquire_mine":
            try:
                accountant.acquire_mine(tenant)
                model.mines[tenant] += 1
            except QuotaExceeded:
                assert model.mines[tenant] >= quotas.max_concurrent_mines
        elif kind == "release_mine":
            if model.mines[tenant] > 0:
                accountant.release_mine(tenant)
                model.mines[tenant] -= 1
        elif kind == "acquire_examples":
            held = sum(c for c, _ in model.examples[tenant])
            held_edges = sum(e for _, e in model.examples[tenant])
            try:
                accountant.acquire_examples(tenant, count, edges)
                model.examples[tenant].append((count, edges))
            except QuotaExceeded:
                # The breach was genuine AND nothing was partially
                # admitted: the ledger still shows the model's view.
                assert (
                    held + count > quotas.max_examples
                    or held_edges + edges > quotas.max_example_edges
                )
                row = accountant.snapshot(tenant)
                assert row["examples"] == held
                assert row["example_edges"] == held_edges
        elif kind == "release_examples":
            if model.examples[tenant]:
                released_count, released_edges = model.examples[tenant].pop()
                accountant.release_examples(
                    tenant, released_count, released_edges
                )

        # Invariant after every step: nothing over budget, anywhere.
        full = accountant.snapshot()
        for tenant_name, held in full["sessions"].items():
            assert 0 < held <= quotas.max_sessions, tenant_name
        for tenant_name, held in full["mines"].items():
            assert 0 < held <= quotas.max_concurrent_mines, tenant_name
        for tenant_name, held in full["examples"].items():
            assert 0 < held <= quotas.max_examples, tenant_name
        for tenant_name, held in full["example_edges"].items():
            assert 0 < held <= quotas.max_example_edges, tenant_name
        # And the ledger agrees with the model exactly.
        row_totals = {
            tenant_name: accountant.snapshot(tenant_name)
            for tenant_name in TENANTS
        }
        for tenant_name in TENANTS:
            assert row_totals[tenant_name]["sessions"] == (
                model.sessions[tenant_name]
            )
            assert row_totals[tenant_name]["mines"] == (
                model.mines[tenant_name]
            )
            assert row_totals[tenant_name]["examples"] == sum(
                c for c, _ in model.examples[tenant_name]
            )

    # Drain the model: releasing everything acquired restores idle.
    for tenant in TENANTS:
        for _ in range(model.sessions[tenant]):
            accountant.release_session(tenant)
        for _ in range(model.mines[tenant]):
            accountant.release_mine(tenant)
        for count, edges in model.examples[tenant]:
            accountant.release_examples(tenant, count, edges)
    assert accountant.is_idle()
    assert accountant.snapshot() == {
        "sessions": {}, "mines": {}, "examples": {}, "example_edges": {}
    }


@settings(max_examples=60, deadline=None)
@given(
    st.data(),
    st.integers(min_value=1, max_value=4),
)
def test_unmatched_release_fails_loudly(data, amount):
    accountant = QuotaAccountant()
    kind = data.draw(
        st.sampled_from(["session", "mine", "examples"]), label="kind"
    )
    with pytest.raises(RuntimeError, match="without a matching acquire"):
        if kind == "session":
            accountant.release_session("ghost")
        elif kind == "mine":
            accountant.release_mine("ghost")
        else:
            accountant.release_examples("ghost", amount, amount)
    # A failed release must not have corrupted the ledger.
    assert accountant.is_idle()


@pytest.fixture(scope="module")
def quota_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("quota-props") / "store"
    tax = _taxonomy()
    Taxogram(
        TaxogramOptions(min_support=0.5, max_edges=2, store_out=str(directory))
    ).mine(_database(tax), tax)
    return directory


@settings(max_examples=25, deadline=None)
@given(
    plan=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # tenant index
            st.integers(min_value=0, max_value=3),  # example batches
            st.floats(min_value=1.0, max_value=30.0),  # ttl
        ),
        min_size=1,
        max_size=8,
    ),
    advance=st.floats(min_value=0.0, max_value=40.0),
)
def test_ttl_eviction_releases_every_accounted_resource(
    quota_store, plan, advance
):
    """Manager level: whatever mix of sessions and examples existed,
    a TTL sweep leaves the accountant holding exactly what the still
    live sessions hold — and holding nothing once everything expired."""
    from repro.serving.reader import StoreReader

    clock = FakeClock()
    quotas = TenantQuotas(max_sessions=16, max_examples=64)
    manager = SessionManager(
        StoreReader(quota_store), quotas=quotas, clock=clock
    )
    expiry = {}
    held_examples = {}
    for tenant_index, batches, ttl in plan:
        tenant = f"tenant-{tenant_index}"
        session = manager.create(tenant, ttl_seconds=ttl)
        for _ in range(batches):
            manager.add_examples(session.session_id, EXAMPLE)
        expiry[session.session_id] = (tenant, clock.now + ttl, batches)
        held_examples[tenant] = held_examples.get(tenant, 0) + batches

    clock.advance(advance)
    manager.evict_expired()

    # The manager evicts at expires_at <= now, so survival is strict.
    survivors = {
        sid: (tenant, batches)
        for sid, (tenant, deadline, batches) in expiry.items()
        if deadline > clock.now
    }
    expected_sessions = {}
    expected_examples = {}
    for tenant, batches in survivors.values():
        expected_sessions[tenant] = expected_sessions.get(tenant, 0) + 1
        expected_examples[tenant] = expected_examples.get(tenant, 0) + batches
    snapshot = manager.accountant.snapshot()
    assert snapshot["sessions"] == expected_sessions
    assert snapshot["examples"] == {
        tenant: count
        for tenant, count in expected_examples.items()
        if count
    }
    assert manager.active_sessions() == len(survivors)

    # Expire the rest: every accounted resource must come back.
    clock.advance(10_000.0)
    manager.evict_expired()
    assert manager.accountant.is_idle()
    assert manager.active_sessions() == 0
