"""Tests for :mod:`repro.sessions`: multi-tenant interactive mining.

Four layers:

* manager unit tests over a hand-built store — lifecycle, TTL eviction
  under an injectable clock, quota enforcement, mine-result caching;
* per-tenant cache isolation, structurally (bucketed
  :class:`VersionedResultCache`) and behaviorally (the cached flag);
* the HTTP surface on *both* fronts (threaded and asyncio), including
  429 + ``Retry-After`` on quota breach and admission classification
  (``session`` sheds under pressure, ``session_control`` never does);
* the acceptance-criteria stress test: 8 threads of mixed-tenant
  traffic against the threaded front — no cross-tenant cache hits, all
  quota breaches surface as 429 + ``Retry-After``, and successful
  mines stay inside a latency envelope.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.exceptions import MiningError
from repro.graphs.database import GraphDatabase
from repro.serving.admission import (
    AdmissionController,
    AdmissionLimits,
    AdmissionPolicy,
)
from repro.serving.cache import VersionedResultCache
from repro.serving.endpoints import (
    ENDPOINT_KINDS,
    NEVER_SHED_KINDS,
    RouteTable,
    session_routes,
    serving_routes,
)
from repro.serving.reader import StoreReader
from repro.serving.server import StoreHTTPServer
from repro.sessions import (
    QuotaAccountant,
    QuotaExceeded,
    SessionManager,
    SessionNotFound,
    TenantQuotas,
)
from repro.taxonomy.builders import taxonomy_from_parent_names

EXAMPLE = "t # 0\nv 0 a1\nv 1 b1\ne 0 1 -\n"
EXAMPLE_2 = "t # 0\nv 0 a1\nv 1 c1\ne 0 1 -\n"


def _taxonomy():
    return taxonomy_from_parent_names(
        {
            "A": [],
            "B": [],
            "C": [],
            "a1": "A",
            "a2": "A",
            "b1": "B",
            "b2": "B",
            "c1": "C",
        }
    )


def _database(tax):
    db = GraphDatabase(node_labels=tax.interner)
    db.new_graph(["a1", "b1", "c1"], [(0, 1), (1, 2), (0, 2)])
    db.new_graph(["a1", "b1"], [(0, 1)])
    db.new_graph(["a1", "b2"], [(0, 1)])
    db.new_graph(["a1", "c1"], [(0, 1)])
    return db


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("sessions") / "store"
    tax = _taxonomy()
    Taxogram(
        TaxogramOptions(min_support=0.5, max_edges=2, store_out=str(directory))
    ).mine(_database(tax), tax)
    return directory


@pytest.fixture
def reader(store_dir):
    return StoreReader(store_dir)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSessionLifecycle:
    def test_create_get_delete(self, reader):
        manager = SessionManager(reader, instance="test")
        session = manager.create("acme")
        assert session.session_id == "sess-test-000001"
        assert manager.get(session.session_id) is session
        manager.delete(session.session_id)
        with pytest.raises(SessionNotFound):
            manager.get(session.session_id)
        with pytest.raises(SessionNotFound):
            manager.delete(session.session_id)

    def test_tenant_must_be_nonempty(self, reader):
        manager = SessionManager(reader)
        with pytest.raises(MiningError):
            manager.create("")
        with pytest.raises(MiningError):
            manager.create("  ")

    def test_ttl_eviction_releases_everything(self, reader):
        clock = FakeClock()
        manager = SessionManager(reader, ttl_seconds=10.0, clock=clock)
        session = manager.create("acme")
        manager.add_examples(session.session_id, EXAMPLE)
        assert manager.accountant.snapshot("acme")["sessions"] == 1
        assert manager.accountant.snapshot("acme")["examples"] == 1
        clock.advance(10.1)
        assert manager.evict_expired() == 1
        with pytest.raises(SessionNotFound):
            manager.get(session.session_id)
        # Eviction returned the session slot AND its examples.
        assert manager.accountant.is_idle()
        assert manager.metrics.counters["sessions.expired"] == 1
        assert manager.metrics.gauges["sessions.active"] == 0

    def test_activity_refreshes_ttl(self, reader):
        clock = FakeClock()
        manager = SessionManager(reader, ttl_seconds=10.0, clock=clock)
        session = manager.create("acme")
        for _ in range(5):
            clock.advance(8.0)
            manager.get(session.session_id)  # touch
        assert manager.active_sessions() == 1

    def test_expiry_is_lazy_on_any_operation(self, reader):
        clock = FakeClock()
        manager = SessionManager(reader, ttl_seconds=5.0, clock=clock)
        stale = manager.create("acme")
        clock.advance(6.0)
        # Creating for another tenant sweeps the expired session too.
        manager.create("beta")
        with pytest.raises(SessionNotFound):
            manager.get(stale.session_id)
        assert manager.accountant.snapshot("acme")["sessions"] == 0

    def test_examples_must_parse_and_be_taxonomy_labeled(self, reader):
        manager = SessionManager(reader)
        session = manager.create("acme")
        with pytest.raises(MiningError):
            manager.add_examples(session.session_id, "   ")
        bad = "t # 0\nv 0 mystery\nv 1 b1\ne 0 1 -\n"
        with pytest.raises(MiningError, match="mystery"):
            manager.add_examples(session.session_id, bad)


class TestQuotas:
    def test_session_quota_breach(self, reader):
        quotas = TenantQuotas(max_sessions=2)
        manager = SessionManager(reader, quotas=quotas)
        manager.create("acme")
        manager.create("acme")
        with pytest.raises(QuotaExceeded) as info:
            manager.create("acme")
        assert info.value.retry_after > 0
        # Another tenant is unaffected.
        manager.create("beta")
        assert manager.metrics.counters["sessions.quota_rejections"] == 1

    def test_example_quota_breach(self, reader):
        quotas = TenantQuotas(max_examples=1)
        manager = SessionManager(reader, quotas=quotas)
        session = manager.create("acme")
        manager.add_examples(session.session_id, EXAMPLE)
        with pytest.raises(QuotaExceeded):
            manager.add_examples(session.session_id, EXAMPLE_2)
        # The rejected batch must not have been partially accounted.
        assert manager.accountant.snapshot("acme")["examples"] == 1

    def test_example_edge_quota_spans_sessions(self, reader):
        quotas = TenantQuotas(max_example_edges=1)
        manager = SessionManager(reader, quotas=quotas)
        first = manager.create("acme")
        manager.add_examples(first.session_id, EXAMPLE)
        second = manager.create("acme")
        with pytest.raises(QuotaExceeded):
            manager.add_examples(second.session_id, EXAMPLE_2)

    def test_candidate_budget_breach(self, reader):
        quotas = TenantQuotas(candidate_budget=1)
        manager = SessionManager(reader, quotas=quotas)
        session = manager.create("acme")
        # Two disconnected 2-node examples witness several structures.
        manager.add_examples(session.session_id, EXAMPLE)
        manager.add_examples(session.session_id, EXAMPLE_2)
        with pytest.raises(QuotaExceeded):
            manager.mine(session.session_id)
        # The mine slot was released despite the breach.
        assert manager.accountant.snapshot("acme")["mines"] == 0


class TestMine:
    def test_mine_and_cache(self, reader):
        manager = SessionManager(reader)
        session = manager.create("acme")
        manager.add_examples(session.session_id, EXAMPLE)
        first = manager.mine(session.session_id)
        assert not first.cached
        assert first.candidates >= 1
        assert first.patterns
        rendered = [manager.render(p) for p in first.patterns]
        assert all("a1" in text or "B" in text for text in rendered)
        second = manager.mine(session.session_id)
        assert second.cached
        assert second.patterns == first.patterns
        assert manager.last_result(session.session_id) is second

    def test_semantics_are_separate_cache_keys(self, reader):
        manager = SessionManager(reader)
        session = manager.create("acme")
        manager.add_examples(session.session_id, EXAMPLE)
        manager.mine(session.session_id, semantics="isomorphism")
        hom = manager.mine(session.session_id, semantics="homomorphism")
        assert not hom.cached

    def test_below_store_sigma_is_refused(self, reader):
        manager = SessionManager(reader)
        session = manager.create("acme")
        manager.add_examples(session.session_id, EXAMPLE)
        with pytest.raises(MiningError, match="min_support"):
            manager.mine(session.session_id, min_support=0.1)

    def test_unknown_semantics(self, reader):
        manager = SessionManager(reader)
        session = manager.create("acme")
        manager.add_examples(session.session_id, EXAMPLE)
        with pytest.raises(MiningError, match="semantics"):
            manager.mine(session.session_id, semantics="telepathy")

    def test_mine_without_examples(self, reader):
        manager = SessionManager(reader)
        session = manager.create("acme")
        with pytest.raises(MiningError, match="example"):
            manager.mine(session.session_id)

    def test_scratch_store_records_classes(self, reader):
        manager = SessionManager(reader)
        session = manager.create("acme")
        manager.add_examples(session.session_id, EXAMPLE)
        result = manager.mine(session.session_id)
        assert session.scratch.num_classes >= 1
        assert session.scratch.patterns() == result.patterns
        assert session.scratch.top_k(1) == result.patterns[:1]


class TestTenantCacheIsolation:
    def test_bucketed_cache_structure(self):
        cache = VersionedResultCache(maxsize=2)
        cache.put(1, "k", "acme-value", tenant="acme")
        assert cache.get(1, "k", tenant="acme") == "acme-value"
        # Same key, other tenant: structurally a miss.
        assert cache.is_miss(cache.get(1, "k", tenant="beta"))
        assert cache.is_miss(cache.get(1, "k"))  # shared bucket too
        # One tenant's churn cannot evict another's entries.
        for i in range(10):
            cache.put(1, f"churn-{i}", i, tenant="beta")
        assert cache.get(1, "k", tenant="acme") == "acme-value"
        assert cache.drop_tenant("acme") == 1
        assert cache.is_miss(cache.get(1, "k", tenant="acme"))

    def test_identical_mine_is_not_shared_across_tenants(self, reader):
        manager = SessionManager(reader)
        one = manager.create("acme")
        two = manager.create("beta")
        manager.add_examples(one.session_id, EXAMPLE)
        manager.add_examples(two.session_id, EXAMPLE)
        first = manager.mine(one.session_id)
        # Identical examples, identical sigma: a shared cache would
        # serve tenant beta from tenant acme's entry.
        other = manager.mine(two.session_id)
        assert not other.cached
        assert other.patterns == first.patterns  # same answer, own work

    def test_last_session_release_drops_tenant_buckets(self, reader):
        manager = SessionManager(reader)
        session = manager.create("acme")
        manager.add_examples(session.session_id, EXAMPLE)
        manager.mine(session.session_id)
        manager.delete(session.session_id)
        # A fresh session for the same tenant recomputes from scratch.
        again = manager.create("acme")
        manager.add_examples(again.session_id, EXAMPLE)
        assert not manager.mine(again.session_id).cached


class TestAdmissionClassification:
    def test_session_kinds_are_registered(self):
        assert "session" in ENDPOINT_KINDS
        assert "session_control" in ENDPOINT_KINDS
        assert "session_control" in NEVER_SHED_KINDS
        assert "session" not in NEVER_SHED_KINDS

    def test_route_kinds(self, reader):
        manager = SessionManager(reader)
        kinds = {
            endpoint.name: endpoint.kind
            for endpoint in session_routes(manager).endpoints()
        }
        assert kinds["session_mine"] == "session"
        for name in (
            "session_create", "session_get", "session_delete",
            "session_examples", "session_result",
        ):
            assert kinds[name] == "session_control"

    def test_mine_sheds_under_pressure_but_control_never(self):
        policy = AdmissionPolicy(AdmissionLimits(session_concurrency=2))
        crushing = 10_000
        assert policy.shed_probability("session", crushing) == 1.0
        assert policy.shed_probability("session_control", crushing) == 0.0

    def test_controller_tracks_session_kinds(self):
        controller = AdmissionController()
        decision = controller.try_admit("session")
        assert decision.admitted
        assert controller.depth("session") == 1
        controller.release("session")
        assert controller.depth("session") == 0


def _serve(reader, manager) -> tuple[StoreHTTPServer, str]:
    server = StoreHTTPServer(("127.0.0.1", 0), reader, sessions=manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


def _call(base, method, path, doc=None):
    data = None if doc is None else json.dumps(doc).encode()
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestThreadedFront:
    def test_full_session_round_trip(self, reader):
        manager = SessionManager(reader)
        server, base = _serve(reader, manager)
        try:
            status, doc, _ = _call(
                base, "POST", "/sessions", {"tenant": "acme"}
            )
            assert status == 201
            sid = doc["session_id"]
            status, doc, _ = _call(
                base, "POST", f"/sessions/{sid}/examples",
                {"graphs": EXAMPLE},
            )
            assert (status, doc["examples"]) == (200, 1)
            status, doc, _ = _call(base, "POST", f"/sessions/{sid}/mine", {})
            assert status == 200
            assert doc["op"] == "session_mine"
            assert doc["candidates"] >= 1
            assert doc["patterns"]
            status, again, _ = _call(base, "GET", f"/sessions/{sid}/result")
            assert status == 200
            assert again["patterns"] == doc["patterns"]
            status, doc, _ = _call(base, "GET", f"/sessions/{sid}")
            assert (status, doc["mines"]) == (200, 1)
            status, doc, _ = _call(base, "DELETE", f"/sessions/{sid}")
            assert (status, doc["deleted"]) == (200, True)
            status, _doc, _ = _call(base, "GET", f"/sessions/{sid}")
            assert status == 404
        finally:
            server.shutdown()

    def test_quota_breach_is_429_with_retry_after(self, reader):
        manager = SessionManager(reader, quotas=TenantQuotas(max_sessions=1))
        server, base = _serve(reader, manager)
        try:
            status, _, _ = _call(base, "POST", "/sessions", {"tenant": "t"})
            assert status == 201
            status, doc, headers = _call(
                base, "POST", "/sessions", {"tenant": "t"}
            )
            assert status == 429
            assert doc["retry_after"] > 0
            assert float(headers["Retry-After"]) > 0
        finally:
            server.shutdown()

    def test_result_before_any_mine_is_404(self, reader):
        manager = SessionManager(reader)
        server, base = _serve(reader, manager)
        try:
            _, doc, _ = _call(base, "POST", "/sessions", {})
            sid = doc["session_id"]
            status, doc, _ = _call(base, "GET", f"/sessions/{sid}/result")
            assert status == 404
            assert "no mine result" in doc["error"]
        finally:
            server.shutdown()


class TestAsyncFront:
    def test_full_session_round_trip(self, store_dir):
        from repro.serving.aserver import serve_async

        front, reader = serve_async(store_dir, port=0)
        host, port = front.start_background()
        base = f"http://{host}:{port}"
        try:
            status, doc, _ = _call(
                base, "POST", "/sessions", {"tenant": "async"}
            )
            assert status == 201
            sid = doc["session_id"]
            status, _, _ = _call(
                base, "POST", f"/sessions/{sid}/examples",
                {"graphs": EXAMPLE},
            )
            assert status == 200
            status, doc, _ = _call(base, "POST", f"/sessions/{sid}/mine", {})
            assert status == 200
            assert doc["patterns"]
            status, doc, _ = _call(base, "DELETE", f"/sessions/{sid}")
            assert status == 200
        finally:
            front.stop_background()

    def test_byte_identical_mine_payload_across_fronts(self, store_dir):
        """The differential bar for the two fronts: same bytes."""
        from repro.serving.aserver import serve_async

        reader = StoreReader(store_dir)
        manager = SessionManager(reader)
        server, base_threaded = _serve(reader, manager)
        front, _ = serve_async(store_dir, port=0)
        host, port = front.start_background()
        base_async = f"http://{host}:{port}"
        try:
            payloads = []
            for base in (base_threaded, base_async):
                _, doc, _ = _call(base, "POST", "/sessions", {"tenant": "x"})
                sid = doc["session_id"]
                _call(
                    base, "POST", f"/sessions/{sid}/examples",
                    {"graphs": EXAMPLE},
                )
                _, mined, _ = _call(
                    base, "POST", f"/sessions/{sid}/mine", {}
                )
                mined.pop("session_id")
                payloads.append(mined)
            assert payloads[0] == payloads[1]
        finally:
            front.stop_background()
            server.shutdown()


class TestMixedTenantStress:
    """Acceptance criteria: 8 threads of mixed-tenant traffic."""

    THREADS = 8
    ROUNDS = 4

    def test_eight_thread_mixed_tenant_stress(self, reader):
        quotas = TenantQuotas(max_concurrent_mines=1)
        manager = SessionManager(reader, quotas=quotas)
        server, base = _serve(reader, manager)
        results: list[dict] = []
        lock = threading.Lock()
        start_barrier = threading.Barrier(self.THREADS)

        def worker(index: int) -> None:
            tenant = f"tenant-{index % 4}"
            _, doc, _ = _call(base, "POST", "/sessions", {"tenant": tenant})
            sid = doc["session_id"]
            # Every tenant submits the IDENTICAL example set: a shared
            # cache would hand tenant N tenant 0's warm entry.
            _call(
                base, "POST", f"/sessions/{sid}/examples",
                {"graphs": EXAMPLE},
            )
            start_barrier.wait()
            rows = []
            for _ in range(self.ROUNDS):
                began = time.monotonic()
                status, mined, headers = _call(
                    base, "POST", f"/sessions/{sid}/mine", {}
                )
                rows.append(
                    {
                        "tenant": tenant,
                        "status": status,
                        "cached": mined.get("cached"),
                        "retry_after": headers.get("Retry-After"),
                        "began": began,
                        "latency": time.monotonic() - began,
                    }
                )
            with lock:
                results.extend(rows)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.THREADS)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        finally:
            server.shutdown()
        assert all(not t.is_alive() for t in threads)
        assert len(results) == self.THREADS * self.ROUNDS

        # Every answer is a success or a well-formed shed; never 5xx.
        assert {row["status"] for row in results} <= {200, 429}
        for row in results:
            if row["status"] == 429:
                assert float(row["retry_after"]) > 0

        # No cross-tenant cache hits: every tenant computed its own
        # answer exactly once, even though all tenants mined the
        # IDENTICAL example set.  A shared cache would leave later
        # tenants with zero fresh mines; broken per-tenant keying or a
        # leaky put would show more than one.  (Per-tenant mines are
        # serialized at concurrency 1 and the cache is filled before
        # the slot releases, so a second fresh mine is impossible.)
        for tenant in {row["tenant"] for row in results}:
            mine_results = [
                row for row in results
                if row["tenant"] == tenant and row["status"] == 200
            ]
            assert mine_results, f"{tenant} never completed a mine"
            fresh = sum(
                1 for row in mine_results if row["cached"] is False
            )
            assert fresh == 1, f"{tenant}: {fresh} fresh mines"

        # Structural proof of isolation: every tenant's entry sits in
        # its own cache bucket.
        assert set(manager._cache.tenants()) == {
            f"tenant-{index}" for index in range(4)
        }

        # Latency envelope: quota shedding on one tenant must not
        # stall the others' successful mines.
        worst = max(
            row["latency"] for row in results if row["status"] == 200
        )
        assert worst < 10.0

        # Nothing leaked: all mine slots were released.
        for index in range(4):
            held = manager.accountant.snapshot(f"tenant-{index}")
            assert held["mines"] == 0

    def test_stress_left_no_cross_tenant_state(self, reader):
        # Guard against bucket bleed at the structural level after the
        # behavioral test: a fresh manager's cache starts empty and
        # tenants() reflects only tenants that actually wrote.
        cache = VersionedResultCache()
        cache.put(1, "k", 1, tenant="a")
        cache.put(1, "k", 2, tenant="b")
        assert set(cache.tenants()) == {"a", "b"}
        assert cache.get(1, "k", tenant="a") == 1
        assert cache.get(1, "k", tenant="b") == 2


class TestRouteTableTemplates:
    def test_exact_match_wins(self, reader):
        manager = SessionManager(reader)
        routes = serving_routes(reader).merge(session_routes(manager))
        endpoint, args = routes.match("GET", "/health")
        assert (endpoint.name, args) == ("health", {})

    def test_template_binding(self, reader):
        manager = SessionManager(reader)
        routes = session_routes(manager)
        endpoint, args = routes.match("GET", "/sessions/sess-42")
        assert endpoint.name == "session_get"
        assert args == {"id": "sess-42"}
        endpoint, args = routes.match("POST", "/sessions/sess-42/mine")
        assert (endpoint.name, args["id"]) == ("session_mine", "sess-42")

    def test_no_match(self, reader):
        manager = SessionManager(reader)
        routes = session_routes(manager)
        assert routes.match("GET", "/sessions")[0] is None
        assert routes.match("GET", "/sessions/a/b/c/d")[0] is None
        assert routes.match("GET", "/sessions//mine")[0] is None

    def test_route_table_is_default_constructible(self):
        assert RouteTable().match("GET", "/x") == (None, {})
