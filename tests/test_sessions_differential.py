"""The session-mining differential bar (ISSUE.md, PR 10).

A session mine over examples ``E`` at sigma must equal a **fresh
global mine** at sigma restricted to the patterns ``E`` witnesses —
bit-identical codes, support counts, and support sets — under both
witness semantics, over randomized DAG / multi-root taxonomies.

The two sides compute very differently: the oracle re-runs the whole
batch pipeline and then filters with explicit per-pattern witness
checks, while the session path never rescans the database — it seeds
candidate generation from the examples' relabeled classes and resolves
supports from the store's persisted bit-sets.  Any divergence in the
Step-1 relabel-seeding argument, the witness filter, or the bit-set
resolution shows up here as a set difference.
"""

from __future__ import annotations

import random

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions, mine
from repro.graphs.database import GraphDatabase
from repro.graphs.io import serialize_graph_database
from repro.isomorphism.vf2 import is_generalized_subgraph_isomorphic
from repro.serving.reader import StoreReader
from repro.sessions import SessionManager
from repro.similarity.homomorphism import (
    is_generalized_subgraph_homomorphic,
)
from tests.conftest import make_differential_case

MAX_EDGES = 2
SEEDS = range(20)


def _pick_examples(rng, database):
    """1-2 database graphs (with edges) to play the client's examples."""
    candidates = [graph for graph in database if graph.num_edges > 0]
    if not candidates:
        return None
    count = min(len(candidates), rng.randint(1, 2))
    return rng.sample(candidates, count)


def _examples_text(database, examples) -> str:
    subset = GraphDatabase(database.node_labels, database.edge_labels)
    for graph in examples:
        subset.add_graph(graph.copy())
    return serialize_graph_database(subset)


def _witnessed(pattern, examples, working, semantics) -> bool:
    if semantics == "homomorphism":
        return any(
            is_generalized_subgraph_homomorphic(
                pattern.graph, example, working
            )
            for example in examples
        )
    return any(
        is_generalized_subgraph_isomorphic(pattern.graph, example, working)
        for example in examples
    )


def _fingerprints(patterns):
    return {
        (pattern.code.edges, pattern.support_count, pattern.support_set)
        for pattern in patterns
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("semantics", ["isomorphism", "homomorphism"])
def test_session_mine_equals_restricted_global_mine(
    tmp_path, seed, semantics
):
    database, taxonomy, sigma = make_differential_case(seed)
    rng = random.Random(seed + 999)
    examples = _pick_examples(rng, database)
    if examples is None:
        pytest.skip("seeded database has no graph with edges")

    store = tmp_path / "store"
    Taxogram(
        TaxogramOptions(
            min_support=sigma, max_edges=MAX_EDGES, store_out=str(store)
        )
    ).mine(database, taxonomy)

    reader = StoreReader(store)
    manager = SessionManager(reader)
    session = manager.create(f"diff-{seed}")
    manager.add_examples(
        session.session_id, _examples_text(database, examples)
    )
    result = manager.mine(session.session_id, semantics=semantics)

    # The oracle: a fresh batch mine of the whole database, restricted
    # to the patterns some example witnesses.
    fresh = mine(database, taxonomy, sigma, max_edges=MAX_EDGES)
    working = reader.working_taxonomy
    expected = [
        pattern
        for pattern in fresh.patterns
        if _witnessed(pattern, examples, working, semantics)
    ]

    assert _fingerprints(result.patterns) == _fingerprints(expected), (
        f"seed {seed} ({semantics}): session mine diverged from the "
        f"restricted global mine at sigma={sigma}"
    )
    # Bit-identical supports, not just the same structures.
    by_code = {p.code.edges: p for p in result.patterns}
    for pattern in expected:
        twin = by_code[pattern.code.edges]
        assert twin.support_count == pattern.support_count
        assert twin.support == pattern.support
        assert twin.support_set == pattern.support_set


@pytest.mark.parametrize("seed", [1, 6, 15])
def test_iso_witnesses_are_a_subset_of_hom_witnesses(tmp_path, seed):
    """Every injective witness is also a homomorphic one, never the
    reverse: the hom session answer contains the iso answer."""
    database, taxonomy, sigma = make_differential_case(seed)
    rng = random.Random(seed + 999)
    examples = _pick_examples(rng, database)
    if examples is None:
        pytest.skip("seeded database has no graph with edges")
    store = tmp_path / "store"
    Taxogram(
        TaxogramOptions(
            min_support=sigma, max_edges=MAX_EDGES, store_out=str(store)
        )
    ).mine(database, taxonomy)
    manager = SessionManager(StoreReader(store))
    session = manager.create("subset")
    manager.add_examples(
        session.session_id, _examples_text(database, examples)
    )
    iso = manager.mine(session.session_id, semantics="isomorphism")
    hom = manager.mine(session.session_id, semantics="homomorphism")
    assert _fingerprints(iso.patterns) <= _fingerprints(hom.patterns)
