"""Tests for :mod:`repro.parallel.sharding`."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import MiningError
from repro.graphs.io import parse_graph_database
from repro.parallel.sharding import local_min_count, shard_database
from repro.util.interner import LabelInterner
from tests.conftest import make_random_database, make_random_taxonomy


def _random_db(seed: int, n_graphs: int):
    rng = random.Random(seed)
    interner = LabelInterner()
    taxonomy = make_random_taxonomy(rng, interner, 5)
    return make_random_database(rng, taxonomy, n_graphs)


class TestShardDatabase:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4])
    def test_contiguous_balanced_partition(self, num_shards):
        db = _random_db(1, 7)
        manifest = shard_database(db, num_shards)
        assert len(manifest) == num_shards
        assert manifest.database_size == 7
        assert sum(manifest.graph_counts) == 7
        # Balanced to within one graph, contiguous, in order.
        assert max(manifest.graph_counts) - min(manifest.graph_counts) <= 1
        position = 0
        for shard in manifest.shards:
            assert shard.start == position
            assert shard.graph_count >= 1
            position = shard.stop
        assert position == 7

    def test_round_trip_preserves_graphs_and_labels(self):
        db = _random_db(2, 6)
        manifest = shard_database(db, 3)
        rebuilt = []
        for shard in manifest.shards:
            part = parse_graph_database(
                shard.text,
                node_labels=LabelInterner(db.node_labels.names()),
                edge_labels=LabelInterner(db.edge_labels.names()),
            )
            assert len(part) == shard.graph_count
            rebuilt.extend(part.graphs)
        assert len(rebuilt) == len(db)
        for original, copy in zip(db.graphs, rebuilt):
            # Same labels and edge set; ids re-base per shard.
            assert original.node_labels() == copy.node_labels()
            assert sorted(original.edges()) == sorted(copy.edges())

    def test_label_universe_aggregates(self):
        db = _random_db(3, 5)
        manifest = shard_database(db, 2)
        assert manifest.label_universe == frozenset(db.distinct_node_labels())
        for shard in manifest.shards:
            observed = set()
            for graph in db.graphs[shard.start : shard.stop]:
                observed.update(graph.node_labels())
            assert shard.label_universe == frozenset(observed)

    def test_single_shard_is_whole_database(self):
        db = _random_db(4, 4)
        manifest = shard_database(db, 1)
        assert manifest.graph_counts == (4,)
        assert manifest.shards[0].start == 0

    def test_more_shards_than_graphs_rejected(self):
        db = _random_db(5, 3)
        with pytest.raises(MiningError, match="non-empty"):
            shard_database(db, 4)

    def test_zero_shards_rejected(self):
        db = _random_db(6, 3)
        with pytest.raises(MiningError, match="at least 1"):
            shard_database(db, 0)


class TestLocalMinCount:
    @pytest.mark.parametrize(
        "global_count,shards,expected",
        [(10, 1, 10), (10, 2, 5), (10, 3, 4), (10, 4, 3), (1, 4, 1), (7, 2, 4)],
    )
    def test_ceiling_division(self, global_count, shards, expected):
        assert local_min_count(global_count, shards) == expected

    def test_pigeonhole_bound_is_tight(self):
        # A count of c over k shards puts >= ceil(c/k) in some shard; any
        # larger threshold could miss a perfectly even spread.
        for c in range(1, 30):
            for k in range(1, 6):
                t = local_min_count(c, k)
                assert t == math.ceil(c / k)
                # Even spread: the fullest shard holds exactly ceil(c/k).
                spread = [(c + i) // k for i in range(k)]
                assert sum(spread) == c
                assert max(spread) == t

    def test_invalid_arguments_rejected(self):
        with pytest.raises(MiningError):
            local_min_count(0, 2)
        with pytest.raises(MiningError):
            local_min_count(3, 0)
