"""Unit tests for :mod:`repro.similarity`.

The differential suite (``tests/test_similarity_differential.py``)
pins the subsystem against brute-force oracles and the exact serving
path; these tests pin the individual pieces — the measure's defining
invariant (``sim == 1.0`` iff exact generalized match), threshold
validation, homomorphism semantics, the MCS solver on hand-checked
fixtures, treelet decomposition, and the engine's counters and
prefilter bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.exceptions import MiningError
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.isomorphism.matchers import GeneralizedMatcher
from repro.isomorphism.vf2 import (
    find_embedding,
    is_generalized_subgraph_isomorphic,
    iter_embeddings,
)
from repro.similarity import (
    MaximumCommonSubgraphSolver,
    SimilarityEngine,
    TaxonomySimilarity,
    ThresholdMatcher,
    TreeletIndex,
    find_homomorphism,
    fuzzy_contains,
    is_generalized_subgraph_homomorphic,
    iter_homomorphisms,
    pattern_fragments,
)
from repro.similarity.engine import validate_semantics
from repro.similarity.matcher import validate_threshold
from repro.taxonomy.builders import taxonomy_from_parent_names


def _go_taxonomy():
    # The tutorial's GO excerpt; longest-path depths in comments.
    return taxonomy_from_parent_names(
        {
            "molecular_function": [],            # 0
            "transporter": "molecular_function",  # 1
            "catalytic_activity": "molecular_function",  # 1
            "carrier": "transporter",             # 2
            "cation_transporter": "transporter",  # 2
            "helicase": "catalytic_activity",     # 2
            "dna_helicase": "helicase",           # 3
        }
    )


def _go_database(tax):
    db = GraphDatabase(node_labels=tax.interner)
    db.new_graph(
        ["carrier", "dna_helicase", "cation_transporter"],
        [(0, 1, "interacts"), (1, 2, "interacts")],
    )
    db.new_graph(["cation_transporter", "helicase"], [(0, 1, "interacts")])
    db.new_graph(["carrier", "helicase"], [(0, 1, "interacts")])
    return db


def _graph(tax, labels, edges):
    return Graph.from_edges([tax.id_of(name) for name in labels], edges)


class TestTaxonomySimilarity:
    def test_equal_labels_score_one(self):
        tax = _go_taxonomy()
        measure = TaxonomySimilarity(tax)
        carrier = tax.id_of("carrier")
        assert measure.node_similarity(carrier, carrier) == 1.0

    def test_generalization_scores_one_and_is_directional(self):
        tax = _go_taxonomy()
        measure = TaxonomySimilarity(tax)
        helicase = tax.id_of("helicase")
        dna = tax.id_of("dna_helicase")
        assert measure.node_similarity(helicase, dna) == 1.0
        # The reverse direction is *not* an exact match: a pattern
        # label strictly below the graph label scores high, not 1.0.
        assert measure.node_similarity(dna, helicase) == pytest.approx(
            3 / 4
        )

    def test_sibling_score_is_normalized_common_ancestor_depth(self):
        tax = _go_taxonomy()
        measure = TaxonomySimilarity(tax)
        carrier = tax.id_of("carrier")
        cation = tax.id_of("cation_transporter")
        helicase = tax.id_of("helicase")
        # Siblings under transporter (depth 1), both at depth 2.
        assert measure.node_similarity(carrier, cation) == pytest.approx(
            2 / 3
        )
        # Across the two depth-1 branches only the root is shared.
        assert measure.node_similarity(carrier, helicase) == pytest.approx(
            1 / 3
        )

    def test_one_iff_exact_generalized_match_over_all_pairs(self):
        # The subsystem's defining invariant, exhaustively.
        tax = _go_taxonomy()
        measure = TaxonomySimilarity(tax)
        for a in tax.labels():
            for b in tax.labels():
                sim = measure.node_similarity(a, b)
                assert 0.0 <= sim <= 1.0
                assert (sim == 1.0) == tax.is_ancestor_or_self(a, b), (
                    tax.name_of(a),
                    tax.name_of(b),
                )

    def test_non_taxonomy_labels_match_only_themselves(self):
        tax = _go_taxonomy()
        measure = TaxonomySimilarity(tax)
        assert measure.node_similarity(10_000, 10_000) == 1.0
        assert measure.node_similarity(10_000, tax.id_of("carrier")) == 0.0
        assert measure.node_similarity(tax.id_of("carrier"), 10_000) == 0.0

    def test_excluded_root_keeps_components_dissimilar(self):
        # An artificial repair root would give unrelated components a
        # phantom resemblance; excluding it restores similarity 0.
        tax = taxonomy_from_parent_names(
            {"root": [], "A": "root", "B": "root"}
        )
        a, b = tax.id_of("A"), tax.id_of("B")
        assert TaxonomySimilarity(tax).node_similarity(a, b) == 0.5
        excluded = TaxonomySimilarity(
            tax, exclude_labels={tax.id_of("root")}
        )
        assert excluded.node_similarity(a, b) == 0.0

    def test_edge_similarity_is_binary(self):
        measure = TaxonomySimilarity(_go_taxonomy())
        assert measure.edge_similarity(3, 3) == 1.0
        assert measure.edge_similarity(3, 4) == 0.0

    def test_compatible_labels_filters_by_threshold(self):
        tax = _go_taxonomy()
        measure = TaxonomySimilarity(tax)
        carrier = tax.id_of("carrier")
        labels = sorted(tax.labels())
        exact = set(measure.compatible_labels(carrier, labels, 1.0))
        assert exact == {carrier}
        loose = set(measure.compatible_labels(carrier, labels, 0.6))
        assert carrier in loose
        assert tax.id_of("cation_transporter") in loose  # 2/3
        assert tax.id_of("helicase") not in loose        # 1/3


class TestValidateThreshold:
    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.0001, 2.0])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(MiningError):
            validate_threshold(bad)

    @pytest.mark.parametrize("ok", [1.0, 0.5, 1e-9, 1])
    def test_valid_accepted_and_coerced(self, ok):
        assert validate_threshold(ok) == float(ok)

    def test_semantics_validated(self):
        assert validate_semantics("isomorphism") == "isomorphism"
        assert validate_semantics("homomorphism") == "homomorphism"
        with pytest.raises(MiningError):
            validate_semantics("telepathy")


class TestThresholdMatcher:
    def test_threshold_one_equals_generalized_matcher(self):
        tax = _go_taxonomy()
        fuzzy = ThresholdMatcher(TaxonomySimilarity(tax), 1.0)
        exact = GeneralizedMatcher(tax)
        for a in tax.labels():
            for b in tax.labels():
                assert fuzzy.matches(a, b) == exact.matches(a, b)

    def test_lower_threshold_admits_siblings(self):
        tax = _go_taxonomy()
        matcher = ThresholdMatcher(TaxonomySimilarity(tax), 0.6)
        assert matcher.matches(
            tax.id_of("carrier"), tax.id_of("cation_transporter")
        )
        assert not matcher.matches(
            tax.id_of("carrier"), tax.id_of("helicase")
        )

    def test_invalid_threshold_rejected_at_construction(self):
        with pytest.raises(MiningError):
            ThresholdMatcher(TaxonomySimilarity(_go_taxonomy()), 0.0)


class TestHomomorphism:
    def test_every_embedding_is_a_homomorphism(self):
        tax = _go_taxonomy()
        matcher = GeneralizedMatcher(tax)
        pattern = _graph(tax, ["transporter", "helicase"], [(0, 1)])
        graph = _graph(
            tax,
            ["carrier", "dna_helicase", "cation_transporter"],
            [(0, 1), (1, 2)],
        )
        embeddings = set(iter_embeddings(pattern, graph, matcher))
        homs = set(iter_homomorphisms(pattern, graph, matcher))
        assert embeddings
        assert embeddings <= homs

    def test_folding_path_onto_single_edge(self):
        # carrier - helicase - carrier folds onto one carrier-helicase
        # edge: a homomorphism exists where no embedding can (the graph
        # has only two nodes).
        tax = _go_taxonomy()
        matcher = GeneralizedMatcher(tax)
        pattern = _graph(
            tax, ["carrier", "helicase", "carrier"], [(0, 1), (1, 2)]
        )
        graph = _graph(tax, ["carrier", "helicase"], [(0, 1)])
        assert find_embedding(pattern, graph, matcher) is None
        mapping = find_homomorphism(pattern, graph, matcher)
        assert mapping is not None
        assert mapping[0] == mapping[2]  # the two carriers collapsed

    def test_no_degree_pruning(self):
        # A degree-1 graph node legally hosts a degree-2 pattern node:
        # both leaves collapse onto the single neighbor.
        tax = _go_taxonomy()
        matcher = GeneralizedMatcher(tax)
        star = _graph(
            tax, ["helicase", "carrier", "carrier"], [(0, 1), (0, 2)]
        )
        edge = _graph(tax, ["helicase", "carrier"], [(0, 1)])
        mapping = find_homomorphism(star, edge, matcher)
        assert mapping is not None
        assert mapping[1] == mapping[2]

    def test_edge_labels_must_match(self):
        tax = _go_taxonomy()
        matcher = GeneralizedMatcher(tax)
        pattern = _graph(tax, ["carrier", "helicase"], [(0, 1, 7)])
        graph = _graph(tax, ["carrier", "helicase"], [(0, 1, 8)])
        assert find_homomorphism(pattern, graph, matcher) is None

    def test_empty_pattern_and_empty_graph(self):
        tax = _go_taxonomy()
        matcher = GeneralizedMatcher(tax)
        empty = Graph.from_edges([], [])
        node = _graph(tax, ["carrier"], [])
        assert list(iter_homomorphisms(empty, node, matcher)) == [()]
        assert list(iter_homomorphisms(node, empty, matcher)) == []

    def test_generalized_containment_wrapper(self):
        tax = _go_taxonomy()
        pattern = _graph(
            tax, ["transporter", "helicase", "transporter"], [(0, 1), (1, 2)]
        )
        graph = _graph(tax, ["carrier", "dna_helicase"], [(0, 1)])
        assert is_generalized_subgraph_homomorphic(pattern, graph, tax)
        assert not is_generalized_subgraph_isomorphic(pattern, graph, tax)

    def test_fuzzy_contains_selects_semantics(self):
        tax = _go_taxonomy()
        measure = TaxonomySimilarity(tax)
        pattern = _graph(
            tax, ["carrier", "helicase", "carrier"], [(0, 1), (1, 2)]
        )
        graph = _graph(tax, ["carrier", "helicase"], [(0, 1)])
        assert not fuzzy_contains(pattern, graph, measure, 1.0)
        assert fuzzy_contains(
            pattern, graph, measure, 1.0, semantics="homomorphism"
        )
        with pytest.raises(MiningError):
            fuzzy_contains(
                pattern, graph, measure, 1.0, semantics="telepathy"
            )


class TestMaximumCommonSubgraph:
    def _solver(self, tax):
        return MaximumCommonSubgraphSolver(TaxonomySimilarity(tax))

    def test_exact_containment_scores_one(self):
        tax = _go_taxonomy()
        pattern = _graph(tax, ["transporter", "helicase"], [(0, 1)])
        graph = _graph(tax, ["carrier", "dna_helicase"], [(0, 1)])
        result = self._solver(tax).solve(pattern, graph)
        assert result.score == 1.0
        assert -1 not in result.mapping

    def test_hand_checked_partial_score(self):
        # carrier-dna_helicase vs cation_transporter-helicase:
        # node sims 2/3 and 3/4, edge preserved -> (2/3 + 3/4 + 1) / 3.
        tax = _go_taxonomy()
        pattern = _graph(tax, ["carrier", "dna_helicase"], [(0, 1)])
        graph = _graph(tax, ["cation_transporter", "helicase"], [(0, 1)])
        result = self._solver(tax).solve(pattern, graph)
        assert result.score == pytest.approx((2 / 3 + 3 / 4 + 1) / 3)
        assert result.mapping == (0, 1)

    def test_mismatched_edge_label_loses_the_edge_bonus(self):
        tax = _go_taxonomy()
        pattern = _graph(tax, ["carrier", "helicase"], [(0, 1, 7)])
        graph = _graph(tax, ["carrier", "helicase"], [(0, 1, 8)])
        result = self._solver(tax).solve(pattern, graph)
        assert result.score == pytest.approx(2 / 3)  # (1 + 1 + 0) / 3

    def test_disjoint_components_score_zero(self):
        tax = taxonomy_from_parent_names(
            {"A": [], "B": [], "a": "A", "b": "B"}
        )
        pattern = _graph(tax, ["a", "a"], [(0, 1)])
        graph = _graph(tax, ["b", "b"], [(0, 1)])
        result = self._solver(tax).solve(pattern, graph)
        assert result.score == 0.0
        assert result.mapping == (-1, -1)

    def test_empty_pattern_scores_one(self):
        tax = _go_taxonomy()
        empty = Graph.from_edges([], [])
        graph = _graph(tax, ["carrier"], [])
        assert self._solver(tax).solve(empty, graph).score == 1.0

    def test_single_node_pattern_scores_best_node_similarity(self):
        tax = _go_taxonomy()
        pattern = _graph(tax, ["dna_helicase"], [])
        graph = _graph(tax, ["carrier", "helicase"], [(0, 1)])
        result = self._solver(tax).solve(pattern, graph)
        assert result.score == pytest.approx(3 / 4)

    def test_deterministic_across_solves(self):
        tax = _go_taxonomy()
        pattern = _graph(
            tax, ["carrier", "dna_helicase", "helicase"], [(0, 1), (1, 2)]
        )
        graph = _graph(
            tax,
            ["cation_transporter", "helicase", "carrier"],
            [(0, 1), (1, 2)],
        )
        solver = self._solver(tax)
        first = solver.solve(pattern, graph)
        second = solver.solve(pattern, graph)
        assert first == second


class TestTreelets:
    def test_path_fragments(self):
        tax = _go_taxonomy()
        path = _graph(
            tax, ["carrier", "helicase", "cation_transporter"],
            [(0, 1), (1, 2)],
        )
        keys = pattern_fragments(path)
        kinds = [key[0] for key in keys]
        assert kinds.count("n") == 3
        assert kinds.count("e") == 2
        assert kinds.count("w") == 1  # the single wedge centered at 1

    def test_triangle_fragments(self):
        tax = _go_taxonomy()
        triangle = _graph(
            tax, ["carrier", "helicase", "cation_transporter"],
            [(0, 1), (1, 2), (0, 2)],
        )
        kinds = [key[0] for key in pattern_fragments(triangle)]
        assert kinds.count("n") == 3
        assert kinds.count("e") == 3
        assert kinds.count("w") == 3

    def test_duplicate_fragments_dedupe(self):
        tax = _go_taxonomy()
        twin = _graph(tax, ["carrier", "carrier"], [(0, 1)])
        kinds = [key[0] for key in pattern_fragments(twin)]
        assert kinds.count("n") == 1
        assert kinds.count("e") == 1

    def test_index_fragment_sets_and_floors(self):
        tax = _go_taxonomy()
        db = _go_database(tax)
        index = TreeletIndex(db)
        assert index.num_graphs == 3
        assert index.num_fragments > 0
        # Every graph holds the carrier node fragment except g1.
        carrier_key = ("n", tax.id_of("carrier"))
        [(fid,)] = [
            (fid,)
            for key, fid in index.keys_of_kind("n")
            if key == carrier_key
        ]
        assert index.graphs_with(fid).to_set() == {0, 2}
        # Size floors: only g0 has 3 nodes / 2 edges.
        from repro.util.bitset import BitSet

        survivors = index.candidates([], min_nodes=3, min_edges=2)
        assert survivors.to_set() == {0}
        empty = index.candidates([BitSet()])
        assert not empty

    def test_profile_jaccard_bounds_and_self(self):
        tax = _go_taxonomy()
        db = _go_database(tax)
        index = TreeletIndex(db)
        for gid in range(3):
            assert index.profile_jaccard(index.fingerprint(gid), gid) == 1.0
            for other in range(3):
                value = index.profile_jaccard(
                    index.fingerprint(gid), other
                )
                assert 0.0 <= value <= 1.0


class TestSimilarityEngine:
    def _engine(self, prefilter=True):
        tax = _go_taxonomy()
        db = _go_database(tax)
        return tax, db, SimilarityEngine(db, tax, prefilter=prefilter)

    def _pattern(self, tax, db, labels):
        interact = db.edge_labels.intern("interacts")
        return Graph.from_edges(
            [tax.id_of(name) for name in labels],
            [(i, i + 1, interact) for i in range(len(labels) - 1)],
        )

    def test_fuzzy_match_at_one_equals_exact_oracle(self):
        tax, db, engine = self._engine()
        for labels in (
            ["transporter", "helicase"],
            ["carrier", "dna_helicase"],
            ["carrier", "helicase", "carrier"],
        ):
            pattern = self._pattern(tax, db, labels)
            expected = frozenset(
                g.graph_id
                for g in db
                if is_generalized_subgraph_isomorphic(pattern, g, tax)
            )
            assert engine.fuzzy_match(pattern, 1.0) == expected

    def test_prefilter_off_gives_identical_answers(self):
        tax, db, engine = self._engine()
        _, _, unfiltered = self._engine(prefilter=False)
        pattern = self._pattern(tax, db, ["carrier", "dna_helicase"])
        for threshold in (1.0, 0.7, 0.3):
            for semantics in ("isomorphism", "homomorphism"):
                assert engine.fuzzy_match(
                    pattern, threshold, semantics
                ) == unfiltered.fuzzy_match(pattern, threshold, semantics)
        assert engine.similar(pattern, 0.2) == unfiltered.similar(
            pattern, 0.2
        )

    def test_similar_ranks_by_score_then_id_and_truncates(self):
        tax, db, engine = self._engine()
        pattern = self._pattern(tax, db, ["carrier", "dna_helicase"])
        ranked = engine.similar(pattern, 0.2)
        assert [s.graph_id for s in ranked] == [0, 2, 1]
        scores = [s.score for s in ranked]
        assert scores == sorted(scores, reverse=True)
        assert scores[0] == 1.0
        assert engine.similar(pattern, 0.2, k=2) == ranked[:2]
        assert engine.similar(pattern, 0.2, k=0) == ()
        # A high threshold filters below-threshold graphs out entirely.
        assert [
            s.graph_id for s in engine.similar(pattern, 0.95)
        ] == [0]

    def test_similar_rejects_negative_k_and_bad_threshold(self):
        tax, db, engine = self._engine()
        pattern = self._pattern(tax, db, ["carrier", "helicase"])
        with pytest.raises(MiningError):
            engine.similar(pattern, 0.5, k=-1)
        with pytest.raises(MiningError):
            engine.similar(pattern, 0.0)

    def test_score_bounds_and_out_of_range(self):
        tax, db, engine = self._engine()
        pattern = self._pattern(tax, db, ["carrier", "dna_helicase"])
        assert engine.score(pattern, 0) == 1.0
        assert engine.score(pattern, 1) == pytest.approx(
            (2 / 3 + 3 / 4 + 1) / 3
        )
        with pytest.raises(MiningError):
            engine.score(pattern, 3)
        with pytest.raises(MiningError):
            engine.score(pattern, -1)

    def test_counters_and_single_index_build(self):
        tax, db, engine = self._engine()
        pattern = self._pattern(tax, db, ["carrier", "dna_helicase"])
        engine.fuzzy_match(pattern, 1.0)
        engine.fuzzy_match(pattern, 0.5, "homomorphism")
        engine.similar(pattern, 0.5)
        assert engine.metrics.counter("similarity.index_builds") == 1
        assert engine.metrics.counter("similarity.queries") == 3
        assert engine.metrics.counter("similarity.hom_tests") > 0

    def test_missing_edge_label_prefilters_everything(self):
        tax, db, engine = self._engine()
        binds = db.edge_labels.intern("binds")
        pattern = Graph.from_edges(
            [tax.id_of("carrier"), tax.id_of("helicase")], [(0, 1, binds)]
        )
        assert engine.fuzzy_match(pattern, 0.5) == frozenset()
        assert engine.metrics.counter("similarity.vf2_tests") == 0
        assert engine.metrics.counter("similarity.prefilter_skipped") == 3

    def test_exact_shortcut_counter(self):
        tax, db, engine = self._engine()
        pattern = self._pattern(tax, db, ["transporter", "helicase"])
        assert engine.score(pattern, 1) == 1.0
        assert engine.metrics.counter("similarity.exact_shortcuts") == 1
        assert engine.metrics.counter("similarity.mcs_solves") == 0
