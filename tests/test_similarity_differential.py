"""Differential suite for :mod:`repro.similarity`.

Four oracles pin the subsystem:

* ``sim_threshold=1.0`` must reduce to the exact serving path — same
  graph-id sets, same support, same JSON bytes for the id payload —
  over the randomized differential cases;
* the treelet prefilter must be *sound*: candidate sets always contain
  every true match found by a brute-force VF2/homomorphism scan, for
  both semantics and across thresholds;
* the MCS solver's weights must equal a brute-force enumeration of
  every injective partial mapping, and ``score == 1.0`` must coincide
  exactly with generalized containment;
* routed answers (replicated, sharded, catching up, and under live
  ingest) must be bit-identical to a single-store reader.

``RUN_SLOW=1`` widens the seed matrices (the nightly CI job).
"""

from __future__ import annotations

import itertools
import json
import random
import shutil
import threading
import time

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.graphs.database import GraphDatabase
from repro.isomorphism.vf2 import (
    find_embedding,
    is_generalized_subgraph_isomorphic,
)
from repro.replication import (
    Follower,
    FollowerOptions,
    FollowerService,
    HTTPReplica,
    LocalReplica,
    QueryRouter,
    RouterOptions,
    RouterService,
)
from repro.serving import StoreReader, value_payload
from repro.similarity import (
    MaximumCommonSubgraphSolver,
    SimilarityEngine,
    TaxonomySimilarity,
    ThresholdMatcher,
    find_homomorphism,
)
from repro.streaming import ApplierOptions
from repro.taxonomy.builders import taxonomy_from_parent_names
from tests.conftest import make_differential_case
from tests.test_replication_follower import _unapplied_primary
from tests.test_replication_shipper import (
    ADD_ONE,
    _mine_store,
    _request,
    primary,  # noqa: F401 - fixture re-export
)
from tests.test_serving import _query_universe

SEEDS = [1, 2, 3, 4, 6, 9]
WIDE_SEEDS = list(range(10, 34))
THRESHOLDS = (1.0, 0.7, 0.4)
GENERAL = "t # 0\nv 0 a\nv 1 a\ne 0 1 x\n"
SIMILAR_PATTERNS = [
    GENERAL,
    ADD_ONE,
    "t # 0\nv 0 b\nv 1 c\ne 0 1 y\n",
]


def _canon(value) -> bytes:
    return json.dumps(value, sort_keys=True).encode("utf-8")


# -- threshold=1.0 reduces to the exact path ----------------------------------


def _reduction_check(seed, tmp_path, cap):
    database, taxonomy, sigma = make_differential_case(seed)
    directory = tmp_path / f"store{seed}"
    Taxogram(
        TaxogramOptions(
            min_support=sigma, max_edges=2, store_out=str(directory)
        )
    ).mine(database, taxonomy)
    reader = StoreReader(directory)
    rng = random.Random(seed * 104729 + 3)
    for pattern in _query_universe(database, taxonomy, rng, cap):
        exact = reader.graphs_matching(pattern)
        fuzzy = reader.fuzzy_contains(pattern)  # threshold defaults 1.0
        label = f"seed={seed}"
        assert fuzzy.graph_ids == exact.graph_ids, label
        assert fuzzy.support_count == exact.support_count, label
        # Byte-identical id payloads, as the HTTP layer would emit them.
        fuzzy_doc = value_payload(reader, "fuzzy_contains", fuzzy)
        exact_doc = value_payload(reader, "graphs", exact)
        assert _canon(fuzzy_doc["graph_ids"]) == _canon(
            exact_doc["graph_ids"]
        ), label
        assert fuzzy_doc["support"] == exact_doc["support"], label
        # Homomorphic support is always a superset of isomorphic.
        hom = reader.fuzzy_contains(pattern, semantics="homomorphism")
        assert hom.graph_ids >= fuzzy.graph_ids, label


class TestExactReduction:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_threshold_one_is_the_exact_path(self, seed, tmp_path):
        _reduction_check(seed, tmp_path, cap=20)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", WIDE_SEEDS)
    def test_threshold_one_is_the_exact_path_wide(self, seed, tmp_path):
        _reduction_check(seed, tmp_path, cap=40)


# -- prefilter soundness -------------------------------------------------------


def _match_oracle(pattern, database, measure, threshold, semantics):
    """Brute force: test every graph, no index anywhere near."""
    matcher = ThresholdMatcher(measure, threshold)
    hits = set()
    for graph in database:
        if semantics == "homomorphism":
            found = find_homomorphism(pattern, graph, matcher)
        else:
            found = find_embedding(pattern, graph, matcher)
        if found is not None:
            hits.add(graph.graph_id)
    return frozenset(hits)


def _soundness_check(seed, cap):
    database, taxonomy, _sigma = make_differential_case(seed)
    measure = TaxonomySimilarity(taxonomy)
    engine = SimilarityEngine(database, taxonomy)
    blind = SimilarityEngine(database, taxonomy, prefilter=False)
    rng = random.Random(seed * 31 + 7)
    for pattern in _query_universe(database, taxonomy, rng, cap):
        for threshold in THRESHOLDS:
            for semantics in ("isomorphism", "homomorphism"):
                truth = _match_oracle(
                    pattern, database, measure, threshold, semantics
                )
                candidates = engine.candidate_graphs(
                    pattern, threshold, semantics
                ).to_set()
                label = f"seed={seed} t={threshold} {semantics}"
                # Sound: the prefilter may keep losers, never drop a
                # winner.
                assert truth <= candidates, label
                assert engine.fuzzy_match(
                    pattern, threshold, semantics
                ) == truth, label
                assert blind.fuzzy_match(
                    pattern, threshold, semantics
                ) == truth, label


class TestPrefilterSoundness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_prefilter_never_drops_a_true_match(self, seed):
        _soundness_check(seed, cap=10)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", WIDE_SEEDS)
    def test_prefilter_never_drops_a_true_match_wide(self, seed):
        _soundness_check(seed, cap=20)


# -- MCS vs brute force --------------------------------------------------------


def _oracle_mcs_weight(pattern, graph, measure):
    """Enumerate every injective partial mapping; keep the heaviest."""
    pnodes = list(pattern.nodes())
    gnodes = list(graph.nodes())
    best = 0.0
    for assignment in itertools.product([-1] + gnodes, repeat=len(pnodes)):
        used = [g for g in assignment if g >= 0]
        if len(set(used)) != len(used):
            continue
        mapping = dict(zip(pnodes, assignment))
        weight = 0.0
        feasible = True
        for u, g in mapping.items():
            if g < 0:
                continue
            sim = measure.node_similarity(
                pattern.node_label(u), graph.node_label(g)
            )
            if sim <= 0.0:
                feasible = False  # pairs are only mappable at sim > 0
                break
            weight += sim
        if not feasible:
            continue
        for u, v, elabel in pattern.edges():
            gu, gv = mapping[u], mapping[v]
            if (
                gu >= 0
                and gv >= 0
                and graph.has_edge(gu, gv)
                and graph.edge_label(gu, gv) == elabel
            ):
                weight += 1
        best = max(best, weight)
    return best


def _mcs_check(seed, cap):
    database, taxonomy, _sigma = make_differential_case(seed)
    measure = TaxonomySimilarity(taxonomy)
    solver = MaximumCommonSubgraphSolver(measure)
    rng = random.Random(seed * 13 + 1)
    for pattern in _query_universe(database, taxonomy, rng, cap):
        size = pattern.num_nodes + pattern.num_edges
        for graph in database:
            if graph.num_nodes > 7:
                continue  # keep the brute force tractable
            expected = _oracle_mcs_weight(pattern, graph, measure)
            result = solver.solve(pattern, graph)
            label = f"seed={seed} gid={graph.graph_id}"
            assert result.weight == pytest.approx(expected), label
            assert result.score == pytest.approx(expected / size), label
            # The score's top end is the containment predicate.
            assert (result.score == 1.0) == (
                is_generalized_subgraph_isomorphic(
                    pattern, graph, taxonomy
                )
            ), label


class TestMCSOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_solver_matches_brute_force(self, seed):
        _mcs_check(seed, cap=5)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", WIDE_SEEDS)
    def test_solver_matches_brute_force_wide(self, seed):
        _mcs_check(seed, cap=10)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_similar_is_consistent_with_per_graph_scores(self, seed):
        database, taxonomy, _sigma = make_differential_case(seed)
        engine = SimilarityEngine(database, taxonomy)
        rng = random.Random(seed * 17 + 5)
        for pattern in _query_universe(database, taxonomy, rng, 4):
            ranked = engine.similar(pattern, 0.3)
            scores = {
                gid: engine.score(pattern, gid)
                for gid in range(len(database))
            }
            assert {s.graph_id: s.score for s in ranked} == {
                gid: score
                for gid, score in scores.items()
                if score >= 0.3
            }
            ordered = [(-s.score, s.graph_id) for s in ranked]
            assert ordered == sorted(ordered)


# -- cache keying: exact and similarity results never collide ------------------


class TestCacheKeying:
    @pytest.fixture
    def reader(self, tmp_path):
        taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a"})
        db = GraphDatabase(node_labels=taxonomy.interner)
        for name in ["x", "x", "y"]:
            db.new_graph(["b", "c"], [(0, 1, name)])
        store = tmp_path / "store"
        Taxogram(
            TaxogramOptions(min_support=0.4, store_out=str(store))
        ).mine(db, taxonomy)
        return StoreReader(store)

    def test_query_key_separates_ops_and_params(self):
        from repro.serving.cache import query_key

        structure = (("edge", 0, 1),)
        keys = {
            query_key("graphs", structure),
            query_key("support", structure),
            query_key(
                "fuzzy_contains", structure,
                threshold=1.0, semantics="isomorphism",
            ),
            query_key(
                "fuzzy_contains", structure,
                threshold=0.5, semantics="isomorphism",
            ),
            query_key(
                "fuzzy_contains", structure,
                threshold=1.0, semantics="homomorphism",
            ),
            query_key("similar", structure, threshold=0.5, k=None),
            query_key("similar", structure, threshold=0.5, k=2),
            query_key("similarity_score", structure, graph_id=0),
            query_key("similarity_score", structure, graph_id=1),
        }
        assert len(keys) == 9

    def test_exact_and_similarity_answers_do_not_collide(self, reader):
        # Same DFS code, four ops: the regression this guards against
        # is one op's cached value being served for another.
        pattern = reader.parse_pattern(GENERAL)
        support = reader.query("support", pattern)
        exact = reader.query("graphs", pattern)
        fuzzy = reader.query("fuzzy_contains", pattern, sim_threshold=0.2)
        score = reader.query("similarity_score", pattern, graph_id=0)
        assert support.value == 2  # the two x-labeled graphs
        assert exact.value.graph_ids == fuzzy.value.graph_ids
        assert exact.value.path != fuzzy.value.path
        assert fuzzy.value.path == "similarity:isomorphism"
        assert score.value == 1.0
        # Every op replays from its own cache entry, not a neighbor's.
        assert reader.query("support", pattern).cached
        again = reader.query("graphs", pattern)
        assert again.cached and again.value.path == exact.value.path
        again = reader.query(
            "fuzzy_contains", pattern, sim_threshold=0.2
        )
        assert again.cached and again.value.path == fuzzy.value.path

    def test_distinct_parameters_are_distinct_entries(self, reader):
        pattern = reader.parse_pattern("t # 0\nv 0 b\nv 1 b\ne 0 1 x\n")
        # b-b matches nothing exactly (graphs are b-c) but fuzzily at a
        # low threshold: the two thresholds must not share an entry.
        strict = reader.query("fuzzy_contains", pattern)
        loose = reader.query("fuzzy_contains", pattern, sim_threshold=0.2)
        assert strict.value.support_count == 0
        assert loose.value.support_count == 2  # the x-labeled graphs
        assert reader.query("fuzzy_contains", pattern).cached
        # Defaults resolve before keying: explicit 1.0 == omitted.
        explicit = reader.query(
            "fuzzy_contains", pattern, sim_threshold=1.0
        )
        assert explicit.cached
        # similar: k and threshold are part of the key.
        full = reader.query("similar", pattern, sim_threshold=0.2)
        top = reader.query("similar", pattern, sim_threshold=0.2, k=1)
        assert len(full.value) == 3 and len(top.value) == 1
        assert reader.query(
            "similar", pattern, sim_threshold=0.2, k=1
        ).cached
        # similarity_score: graph_id is part of the key.
        first = reader.query("similarity_score", pattern, graph_id=0)
        third = reader.query("similarity_score", pattern, graph_id=2)
        assert first.value != third.value  # x vs y edge label
        assert reader.query(
            "similarity_score", pattern, graph_id=0
        ).cached


# -- routed similarity is bit-identical ----------------------------------------


def _assert_similar_identical(router: QueryRouter, reader: StoreReader):
    """Every similarity op, every probe: routed bytes == direct bytes."""
    for text in SIMILAR_PATTERNS:
        parsed = reader.parse_pattern(text)
        routed = router.query("similar", text, sim_threshold=0.2)
        direct = reader.query("similar", parsed, sim_threshold=0.2)
        assert _canon(routed["value"]) == _canon(
            value_payload(reader, "similar", direct.value)
        ), f"similar diverged on {text!r}"
        for semantics in ("isomorphism", "homomorphism"):
            routed = router.query(
                "fuzzy_contains", text,
                sim_threshold=0.5, semantics=semantics,
            )
            direct = reader.query(
                "fuzzy_contains", parsed,
                sim_threshold=0.5, semantics=semantics,
            )
            assert _canon(routed["value"]) == _canon(
                value_payload(reader, "fuzzy_contains", direct.value)
            ), f"fuzzy_contains[{semantics}] diverged on {text!r}"
        for gid in range(reader.database_size):
            routed = router.query("similarity_score", text, graph_id=gid)
            direct = reader.query(
                "similarity_score", parsed, graph_id=gid
            )
            assert routed["value"] == direct.value, (text, gid)


class TestRoutedStaticIdentity:
    def test_replicated_similarity_is_bit_identical(self, tmp_path):
        store = _mine_store(tmp_path)
        copy = tmp_path / "copy"
        shutil.copytree(store, copy)
        router = QueryRouter([LocalReplica(store), LocalReplica(copy)])
        try:
            _assert_similar_identical(router, StoreReader(store))
        finally:
            router.close()


class TestRoutedCatchUpIdentity:
    def test_every_intermediate_version_answers_identically(
        self, tmp_path
    ):
        service, url, thread = _unapplied_primary(tmp_path, 4)
        try:
            with Follower(
                tmp_path / "replica",
                tmp_path / "rwal",
                url,
                options=FollowerOptions(poll_interval_seconds=0.02),
                applier_options=ApplierOptions(max_batch_records=2),
            ) as follower:
                follower.sync_once()
                versions_checked = 0
                while True:
                    router = QueryRouter(
                        [LocalReplica(tmp_path / "replica")]
                    )
                    try:
                        _assert_similar_identical(
                            router, StoreReader(tmp_path / "replica")
                        )
                    finally:
                        router.close()
                    versions_checked += 1
                    if not follower.applier.apply_next_batch():
                        break
                assert follower.lag() == 0
                assert versions_checked >= 3
        finally:
            service.server.shutdown()
            thread.join(timeout=10)
            service.close()


class TestRoutedShardedIdentity:
    @staticmethod
    def _sharded_stores(tmp_path):
        taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a"})

        def build(names, out):
            db = GraphDatabase(node_labels=taxonomy.interner)
            for name in names:
                db.new_graph(["b", "c"], [(0, 1, name)])
            Taxogram(
                TaxogramOptions(min_support=0.25, store_out=str(out))
            ).mine(db, taxonomy)

        names = ["x", "y", "x", "y", "x", "x"]
        build(names, tmp_path / "global")
        build(names[:3], tmp_path / "shard0")
        build(names[3:], tmp_path / "shard1")
        return tmp_path / "global", [
            tmp_path / "shard0", tmp_path / "shard1"
        ]

    def test_sharded_similarity_merges_exactly(self, tmp_path):
        global_dir, shard_dirs = self._sharded_stores(tmp_path)
        router = QueryRouter(
            [LocalReplica(d, name=d.name) for d in shard_dirs],
            options=RouterOptions(sharded=True),
        )
        reader = StoreReader(global_dir)
        try:
            for text in SIMILAR_PATTERNS:
                parsed = reader.parse_pattern(text)
                routed = router.query("similar", text, sim_threshold=0.2)
                direct = reader.query(
                    "similar", parsed, sim_threshold=0.2
                )
                assert _canon(routed["value"]) == _canon(
                    value_payload(reader, "similar", direct.value)
                ), f"sharded similar diverged on {text!r}"
                # Global top-k: the k-th best may sit entirely in one
                # shard, so truncation happens at the router.
                top = router.query(
                    "similar", text, sim_threshold=0.2, k=2
                )
                assert top["value"] == routed["value"][:2]
                fuzzy = router.query(
                    "fuzzy_contains", text, sim_threshold=0.5
                )
                local = reader.query(
                    "fuzzy_contains", parsed, sim_threshold=0.5
                )
                assert fuzzy["value"]["support"] == (
                    local.value.support_count
                )
                assert fuzzy["value"]["graph_ids"] == sorted(
                    local.value.graph_ids
                )
                for gid in range(reader.database_size):
                    scored = router.query(
                        "similarity_score", text, graph_id=gid
                    )
                    assert scored["value"] == reader.query(
                        "similarity_score", parsed, graph_id=gid
                    ).value
        finally:
            router.close()

    def test_out_of_range_graph_id_rejected(self, tmp_path):
        from repro.replication.router import QueryRejected

        _global_dir, shard_dirs = self._sharded_stores(tmp_path)
        router = QueryRouter(
            [LocalReplica(d) for d in shard_dirs],
            options=RouterOptions(sharded=True),
        )
        try:
            with pytest.raises(QueryRejected, match="out of range"):
                router.query("similarity_score", GENERAL, graph_id=99)
        finally:
            router.close()


class TestRoutedLiveIngestIdentity:
    def test_similar_follows_live_ingest(self, primary, tmp_path):
        """Ingest into the primary while querying ``POST /similar``
        through a router over a catching-up follower: read-your-writes
        via ``min_applied_seq``, then full bit-identity at convergence.
        """
        _service, url = primary
        fsvc = None
        fthread = None
        router_service = None
        rthread = None
        try:
            fsvc = FollowerService(
                tmp_path / "replica",
                tmp_path / "rwal",
                url,
                port=0,
                options=FollowerOptions(poll_interval_seconds=0.02),
                applier_options=ApplierOptions(max_latency_seconds=0.02),
            )
            fsvc.start()
            fthread = threading.Thread(
                target=fsvc.serve_forever, daemon=True
            )
            fthread.start()
            furl = f"http://{fsvc.address[0]}:{fsvc.address[1]}"
            router_service = RouterService([HTTPReplica(furl)], port=0)
            rthread = threading.Thread(
                target=router_service.serve_forever, daemon=True
            )
            rthread.start()
            rurl = (
                f"http://{router_service.address[0]}"
                f":{router_service.address[1]}"
            )

            supports = []
            for _ in range(3):
                status, body, _ = _request(
                    url, "/ingest", {"add": ADD_ONE}
                )
                assert status in (200, 202)
                seq = json.loads(body)["seq"]
                deadline = time.monotonic() + 30
                while True:
                    status, body, headers = _request(
                        rurl,
                        "/similar",
                        {
                            "op": "fuzzy_contains",
                            "pattern": GENERAL,
                            "threshold": 1.0,
                            "min_applied_seq": seq,
                        },
                    )
                    if status == 200:
                        break
                    assert status == 429
                    assert time.monotonic() < deadline, "never caught up"
                    time.sleep(0.05)
                supports.append(json.loads(body)["value"]["support"])
            # Each ingested b-c/x graph fuzzily contains a-a/x exactly.
            base = supports[0]
            for i, value in enumerate(supports):
                assert value >= base + i
            # Convergence: the routed answers are bit-identical to a
            # reader over the follower's own store.
            router = QueryRouter([LocalReplica(tmp_path / "replica")])
            try:
                _assert_similar_identical(
                    router, StoreReader(tmp_path / "replica")
                )
            finally:
                router.close()
        finally:
            if router_service is not None:
                router_service.server.shutdown()
                rthread.join(timeout=10)
                router_service.close()
            if fsvc is not None:
                fsvc.server.shutdown()
                fthread.join(timeout=10)
                fsvc.close()
