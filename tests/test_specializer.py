"""Unit tests for Step 3: specialized-pattern enumeration.

The fixtures mirror the mechanics of the paper's Figures 3.2-3.4: a
two-node pattern class with a hand-built occurrence index, so occurrence
sets, supports and over-generalization decisions can be checked against
hand-computed values.
"""

from __future__ import annotations

from repro.core.occurrence_index import build_occurrence_index
from repro.core.results import MiningCounters
from repro.core.specializer import SpecializerOptions, specialize_class
from repro.graphs.graph import Graph
from repro.mining.gspan import Embedding
from repro.taxonomy.builders import taxonomy_from_parent_names


def _run(taxonomy, structure, embeddings, originals, min_count,
         database_size, options=None):
    counters = MiningCounters()
    store, index = build_occurrence_index(
        structure.num_nodes, embeddings, originals, taxonomy, None, counters
    )
    patterns = specialize_class(
        class_id=0,
        structure=structure,
        store=store,
        index=index,
        taxonomy=taxonomy,
        min_count=min_count,
        database_size=database_size,
        options=options or SpecializerOptions(),
        counters=counters,
    )
    return patterns, counters


def _paper_like_fixture():
    """Three graphs, one a—a pattern class with four occurrences.

    Taxonomy: a -> {b, c}; b -> d; c -> w.
    Originals at (top, bottom) positions per occurrence:
        G0.1: (d, c)   G1.1: (b, c)   G1.2: (c, w)   G2.1: (a, c)
    """
    taxonomy = taxonomy_from_parent_names(
        {"a": [], "b": "a", "c": "a", "d": "b", "w": "c"}
    )
    ids = {n: taxonomy.id_of(n) for n in "abcdw"}
    structure = Graph.from_edges([ids["a"], ids["a"]], [(0, 1, 0)])
    originals = [
        [ids["d"], ids["c"]],
        [ids["b"], ids["c"], ids["c"], ids["w"]],
        [ids["a"], ids["c"]],
    ]
    embeddings = [
        Embedding(0, (0, 1), frozenset()),
        Embedding(1, (0, 1), frozenset()),
        Embedding(1, (2, 3), frozenset()),
        Embedding(2, (0, 1), frozenset()),
    ]
    return taxonomy, ids, structure, originals, embeddings


class TestEnumeration:
    def test_support_by_intersection(self):
        taxonomy, ids, structure, originals, embeddings = _paper_like_fixture()
        patterns, _ = _run(taxonomy, structure, embeddings, originals,
                           min_count=2, database_size=3)
        by_labels = {
            tuple(
                taxonomy.name_of(p.graph.node_label(v))
                for v in p.graph.nodes()
            ): p
            for p in patterns
        }
        # Keys are canonical-code ordered; collect as frozensets of names.
        supports = {
            frozenset(k): p.support_count for k, p in by_labels.items()
        }
        # b at the top position covers occurrences G0.1 (d<=b) and G1.1;
        # combined with c at the bottom -> graphs {0, 1}.
        assert supports.get(frozenset({"b", "c"})) == 2

    def test_infrequent_specializations_pruned(self):
        taxonomy, ids, structure, originals, embeddings = _paper_like_fixture()
        patterns, _ = _run(taxonomy, structure, embeddings, originals,
                           min_count=3, database_size=3)
        for p in patterns:
            assert p.support_count >= 3

    def test_no_duplicate_patterns_from_automorphisms(self):
        taxonomy = taxonomy_from_parent_names({"a": [], "b": "a"})
        a, b = taxonomy.id_of("a"), taxonomy.id_of("b")
        structure = Graph.from_edges([a, a], [(0, 1, 0)])
        # One graph: edge (b, b) -> two automorphic embeddings.
        originals = [[b, b]]
        embeddings = [
            Embedding(0, (0, 1), frozenset()),
            Embedding(0, (1, 0), frozenset()),
        ]
        patterns, _ = _run(taxonomy, structure, embeddings, originals,
                           min_count=1, database_size=1)
        codes = [p.code for p in patterns]
        assert len(codes) == len(set(codes))
        # b-b is the only minimal pattern (a-a and a-b over-generalized).
        names = {
            frozenset(
                taxonomy.name_of(p.graph.node_label(v))
                for v in p.graph.nodes()
            )
            for p in patterns
        }
        assert names == {frozenset({"b"})}

    def test_overgeneralized_intermediate_eliminated(self):
        taxonomy, ids, structure, originals, embeddings = _paper_like_fixture()
        patterns, counters = _run(taxonomy, structure, embeddings, originals,
                                  min_count=3, database_size=3)
        # Bottom position is always c-or-below: a—a (support 3) is
        # over-generalized by a—c (support 3).
        label_sets = {
            tuple(
                sorted(
                    taxonomy.name_of(p.graph.node_label(v))
                    for v in p.graph.nodes()
                )
            )
            for p in patterns
        }
        assert ("a", "a") not in label_sets
        assert ("a", "c") in label_sets
        assert counters.overgeneralized_eliminated >= 1


class TestEnhancements:
    def test_collapse_skips_equal_occurrence_chain(self):
        # Chain a -> b -> c where every occurrence is c: the class base
        # collapses straight to c and a/b are counted as eliminated.
        taxonomy = taxonomy_from_parent_names({"b": "a", "c": "b", "x": []})
        a, b, c, x = (taxonomy.id_of(n) for n in "abcx")
        structure = Graph.from_edges([a, x], [(0, 1, 0)])
        originals = [[c, x], [c, x]]
        embeddings = [
            Embedding(0, (0, 1), frozenset()),
            Embedding(1, (0, 1), frozenset()),
        ]
        with_collapse, counters = _run(
            taxonomy, structure, embeddings, originals, 2, 2,
            SpecializerOptions(occurrence_collapse=True),
        )
        without_collapse, _ = _run(
            taxonomy, structure, embeddings, originals, 2, 2,
            SpecializerOptions(occurrence_collapse=False),
        )
        assert {p.code for p in with_collapse} == {
            p.code for p in without_collapse
        }
        assert counters.overgeneralized_eliminated >= 2  # a and b skipped

    def test_descendant_pruning_changes_work_not_results(self):
        taxonomy, ids, structure, originals, embeddings = _paper_like_fixture()
        pruned, counters_pruned = _run(
            taxonomy, structure, embeddings, originals, 2, 3,
            SpecializerOptions(descendant_pruning=True,
                               occurrence_collapse=False),
        )
        exhaustive, counters_full = _run(
            taxonomy, structure, embeddings, originals, 2, 3,
            SpecializerOptions(descendant_pruning=False,
                               occurrence_collapse=False),
        )
        assert {p.code for p in pruned} == {p.code for p in exhaustive}
        assert (
            counters_full.bitset_intersections
            >= counters_pruned.bitset_intersections
        )
