"""Unit tests for :mod:`repro.util.stats`."""

from __future__ import annotations

from repro.graphs.database import GraphDatabase
from repro.util.stats import DatabaseStats, describe_database, edge_density


class TestEdgeDensity:
    def test_matches_worlein_definition(self):
        # 2 * |E| / |V|^2 (Worlein et al., used by the paper's Table 1)
        assert edge_density(10, 5) == 2 * 5 / 100

    def test_zero_nodes(self):
        assert edge_density(0, 0) == 0.0
        assert edge_density(-1, 3) == 0.0


class TestDescribeDatabase:
    def _db(self) -> GraphDatabase:
        db = GraphDatabase()
        db.new_graph(["a", "b"], [(0, 1)])
        db.new_graph(["a", "b", "c"], [(0, 1), (1, 2), (0, 2)])
        return db

    def test_aggregates(self):
        stats = describe_database(self._db())
        assert stats.graph_count == 2
        assert stats.avg_nodes == 2.5
        assert stats.avg_edges == 2.0
        assert stats.distinct_label_count == 3
        assert stats.max_nodes == 3
        assert stats.max_edges == 3

    def test_density_is_mean_of_per_graph_density(self):
        stats = describe_database(self._db())
        expected = (edge_density(2, 1) + edge_density(3, 3)) / 2
        assert abs(stats.avg_edge_density - expected) < 1e-12

    def test_empty_database(self):
        stats = describe_database([])
        assert stats.graph_count == 0
        assert stats.avg_nodes == 0.0
        assert stats.distinct_label_count == 0

    def test_as_gauges_view(self):
        stats = self._db().stats()
        gauges = stats.as_gauges()
        assert gauges["db.graphs"] == 2.0
        assert gauges["db.avg_nodes"] == 2.5
        assert gauges["db.distinct_labels"] == 3.0
        assert all(isinstance(v, float) for v in gauges.values())
        assert set(stats.as_gauges(prefix="x.")) == {
            f"x.{name}"
            for name in (
                "graphs", "avg_nodes", "avg_edges", "distinct_labels",
                "avg_edge_density",
            )
        }

    def test_row_rendering(self):
        stats = self._db().stats()
        header = DatabaseStats.header()
        row = stats.as_row("TEST")
        assert "DB Id" in header
        assert row.startswith("TEST")
        # One value column per header column ("DB Id" is two words).
        assert len(row.split()) == len(header.split()) - 1
