"""Unit and integration tests for the batching WAL applier.

The ground truth throughout is *offline one-by-one application*: a WAL
drained through :class:`StreamApplier` (whatever the batch bounds) must
leave the store semantically identical to opening a copy of the seed
store and applying each journaled record individually, skipping exactly
the records the incremental updater itself would reject.
"""

from __future__ import annotations

import shutil

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.exceptions import ReproError, StoreError
from repro.graphs.database import GraphDatabase
from repro.graphs.io import serialize_graph_database
from repro.incremental import DatabaseDelta, IncrementalTaxogram, PatternStore
from repro.streaming import (
    ApplierOptions,
    StreamApplier,
    WriteAheadLog,
    applied_wal_seq,
    recover_store,
)
from repro.taxonomy.builders import taxonomy_from_parent_names


def _taxonomy():
    return taxonomy_from_parent_names({"b": "a", "c": "a", "d": "b"})


def _edge_db(taxonomy, edge_names, nodes=("b", "c")):
    db = GraphDatabase(node_labels=taxonomy.interner)
    for name in edge_names:
        db.new_graph(list(nodes), [(0, 1, name)])
    return db


@pytest.fixture
def seeded(tmp_path):
    """A mined store plus a taxonomy-sharing delta factory."""
    taxonomy = _taxonomy()
    db = _edge_db(taxonomy, ["x", "x", "y", "y", "x"])
    store_dir = tmp_path / "store"
    Taxogram(
        TaxogramOptions(min_support=0.3, store_out=str(store_dir))
    ).mine(db, taxonomy)

    def adds(edge_names, nodes=("b", "c")):
        return DatabaseDelta.adding(_edge_db(taxonomy, edge_names, nodes))

    return store_dir, adds


def _store_digest(store_dir):
    """Semantic store state: database text, class codes + live
    occurrences, border.

    Dead-column (tombstone) layout legitimately differs with batching —
    compaction triggers at different points — so columns are compared as
    their live occurrence sets, which is what every support/OIE answer
    is derived from.
    """
    store = PatternStore.open(store_dir)
    return (
        serialize_graph_database(store.database),
        [
            (s.code, sorted(c for c in s.columns if c is not None))
            for s in store.classes
        ],
        store.border,
    )


def _offline_replay(seed_dir, oracle_dir, records):
    """Apply records one by one, skipping ones the updater rejects."""
    shutil.copytree(seed_dir, oracle_dir)
    for record in records:
        try:
            IncrementalTaxogram(oracle_dir).apply(record)
        except ReproError:
            pass
    return oracle_dir


class TestDrainEquivalence:
    def test_batched_equals_one_by_one(self, tmp_path, seeded):
        store_dir, adds = seeded
        records = [
            adds(["y", "x"]),
            DatabaseDelta.removing([0, 3]),
            adds(["x"]),
            DatabaseDelta.removing([5]),
            adds(["y"]),
        ]
        oracle = _offline_replay(store_dir, tmp_path / "oracle", records)
        with WriteAheadLog(tmp_path / "wal") as wal:
            for record in records:
                wal.append(record)
            applier = StreamApplier(
                store_dir, wal, ApplierOptions(max_batch_records=3)
            )
            assert applier.drain() == len(records)
            assert applier.lag == 0
        assert _store_digest(store_dir) == _store_digest(oracle)
        assert applied_wal_seq(PatternStore.open(store_dir)) == 4

    @pytest.mark.parametrize("batch_records", [1, 2, 100])
    def test_batch_boundary_invariance(self, tmp_path, seeded, batch_records):
        store_dir, adds = seeded
        records = [
            adds(["y"]),
            DatabaseDelta.removing([1, 2]),
            adds(["x", "y"]),
            DatabaseDelta.removing([0, 4]),
        ]
        oracle = _offline_replay(store_dir, tmp_path / "oracle", records)
        with WriteAheadLog(tmp_path / "wal") as wal:
            for record in records:
                wal.append(record)
            StreamApplier(
                store_dir,
                wal,
                ApplierOptions(max_batch_records=batch_records),
            ).drain()
        assert _store_digest(store_dir) == _store_digest(oracle)

    def test_remove_of_same_batch_add_cancels(self, tmp_path, seeded):
        store_dir, adds = seeded
        records = [adds(["zz"]), DatabaseDelta.removing([5])]
        oracle = _offline_replay(store_dir, tmp_path / "oracle", records)
        with WriteAheadLog(tmp_path / "wal") as wal:
            for record in records:
                wal.append(record)
            applier = StreamApplier(
                store_dir, wal, ApplierOptions(max_batch_records=100)
            )
            applier.drain()
        digest = _store_digest(store_dir)
        assert digest == _store_digest(oracle)
        # The added graph really was cancelled, not appended-then-removed.
        assert "zz" not in digest[0]

    def test_graph_budget_bounds_batches(self, tmp_path, seeded):
        store_dir, adds = seeded
        with WriteAheadLog(tmp_path / "wal") as wal:
            for _ in range(4):
                wal.append(adds(["x", "y"]))  # 2 graphs per record
            applier = StreamApplier(
                store_dir,
                wal,
                ApplierOptions(max_batch_records=100, max_batch_graphs=4),
            )
            assert applier.apply_next_batch() == 2  # 4 graphs
            assert applier.apply_next_batch() == 2
            assert applier.apply_next_batch() == 0

    def test_oversized_single_record_still_applies(self, tmp_path, seeded):
        store_dir, adds = seeded
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(adds(["x", "y", "x"]))
            applier = StreamApplier(
                store_dir,
                wal,
                ApplierOptions(max_batch_graphs=1),
            )
            assert applier.apply_next_batch() == 1


class TestRejection:
    def test_rejects_match_offline_and_advance_offset(self, tmp_path, seeded):
        store_dir, adds = seeded
        records = [
            adds(["y"]),
            adds(["q"], nodes=("b", "nope")),  # unknown node label
            DatabaseDelta.removing([99]),  # out of range
            DatabaseDelta(add_text="this is not a graph\nv x\n"),
            adds(["x"]),
        ]
        oracle = _offline_replay(store_dir, tmp_path / "oracle", records)
        with WriteAheadLog(tmp_path / "wal") as wal:
            for record in records:
                wal.append(record)
            applier = StreamApplier(
                store_dir, wal, ApplierOptions(max_batch_records=100)
            )
            applier.drain()
        assert [seq for seq, _ in applier.rejected] == [1, 2, 3]
        assert _store_digest(store_dir) == _store_digest(oracle)
        # Rejected records still advance the committed offset.
        assert applied_wal_seq(PatternStore.open(store_dir)) == 4

    def test_rejected_labels_not_interned_into_store(self, tmp_path, seeded):
        store_dir, adds = seeded
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(adds(["q"], nodes=("b", "ghost")))
            StreamApplier(store_dir, wal).drain()
        store = PatternStore.open(store_dir)
        assert "ghost" not in store.database.node_labels.names()

    def test_delta_emptying_database_rejected(self, tmp_path, seeded):
        store_dir, _adds = seeded
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(DatabaseDelta.removing([0, 1, 2, 3, 4]))
            applier = StreamApplier(store_dir, wal)
            applier.drain()
        assert applier.rejected[0][1] == (
            "delta removes every graph in the database"
        )
        assert len(PatternStore.open(store_dir).database) == 5


class TestRecovery:
    def test_replay_is_idempotent_across_restarts(self, tmp_path, seeded):
        store_dir, adds = seeded
        records = [adds(["y"]), DatabaseDelta.removing([0]), adds(["x"])]
        with WriteAheadLog(tmp_path / "wal") as wal:
            for record in records:
                wal.append(record)
            StreamApplier(
                store_dir, wal, ApplierOptions(max_batch_records=2)
            ).drain()
            digest = _store_digest(store_dir)
            # A second applier over the same WAL applies nothing.
            applier = StreamApplier(store_dir, wal)
            assert applier.drain() == 0
        assert _store_digest(store_dir) == digest

    def test_stray_shadow_discarded(self, tmp_path, seeded):
        store_dir, _adds = seeded
        shadow = store_dir.with_name("store.next")
        shutil.copytree(store_dir, shadow)
        assert recover_store(store_dir) == "clean"
        assert not shadow.exists()

    def test_mid_swap_crash_adopts_next(self, tmp_path, seeded):
        store_dir, _adds = seeded
        digest = _store_digest(store_dir)
        shadow = store_dir.with_name("store.next")
        shutil.copytree(store_dir, shadow)
        store_dir.rename(store_dir.with_name("store.prev"))
        assert recover_store(store_dir) == "adopted_next"
        assert _store_digest(store_dir) == digest
        assert not shadow.exists()
        assert not store_dir.with_name("store.prev").exists()

    def test_leftover_prev_after_swap_discarded(self, tmp_path, seeded):
        store_dir, _adds = seeded
        prev = store_dir.with_name("store.prev")
        shutil.copytree(store_dir, prev)
        assert recover_store(store_dir) == "clean"
        assert not prev.exists()

    def test_torn_shadow_discarded(self, tmp_path, seeded):
        store_dir, _adds = seeded
        shadow = store_dir.with_name("store.next")
        shutil.copytree(store_dir, shadow)
        (shadow / "manifest.json").unlink()  # crash mid shadow save
        assert recover_store(store_dir) == "clean"
        assert not shadow.exists()

    def test_nothing_to_recover_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no complete shadow"):
            recover_store(tmp_path / "missing")

    def test_applier_constructor_recovers(self, tmp_path, seeded):
        store_dir, adds = seeded
        digest = _store_digest(store_dir)
        shutil.copytree(store_dir, store_dir.with_name("store.next"))
        store_dir.rename(store_dir.with_name("store.prev"))
        with WriteAheadLog(tmp_path / "wal") as wal:
            applier = StreamApplier(store_dir, wal)
            assert applier.recovery == "adopted_next"
        assert _store_digest(store_dir) == digest

    def test_full_remine_fallback_keeps_offset(self, tmp_path, seeded):
        store_dir, adds = seeded
        # 5 adds against a 5-graph base forces the remine fallback.
        big = adds(["x", "y", "x", "y", "x"])
        oracle = _offline_replay(store_dir, tmp_path / "oracle", [big])
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(big)
            applier = StreamApplier(store_dir, wal)
            applier.drain()
            assert applier.drain() == 0  # offset survived the remine swap
        store = PatternStore.open(store_dir)
        assert applied_wal_seq(store) == 0
        assert _store_digest(store_dir) == _store_digest(oracle)


class TestBackgroundThread:
    def test_background_apply_and_wait(self, tmp_path, seeded):
        store_dir, adds = seeded
        with WriteAheadLog(tmp_path / "wal") as wal:
            applier = StreamApplier(
                store_dir,
                wal,
                ApplierOptions(max_latency_seconds=0.02),
            )
            applier.start()
            try:
                seq = wal.append(adds(["y"]))
                assert applier.wait_applied(seq, timeout=30.0)
                assert applier.lag == 0
            finally:
                applier.stop()
        assert applied_wal_seq(PatternStore.open(store_dir)) == 0

    def test_stop_drains_pending_records(self, tmp_path, seeded):
        store_dir, adds = seeded
        with WriteAheadLog(tmp_path / "wal") as wal:
            applier = StreamApplier(
                store_dir,
                wal,
                ApplierOptions(max_latency_seconds=60.0),
            )
            applier.start()
            seq = wal.append(adds(["y"]))
            applier.stop()
            assert applier.applied_seq == seq

    def test_flush_forces_prompt_apply(self, tmp_path, seeded):
        store_dir, adds = seeded
        with WriteAheadLog(tmp_path / "wal") as wal:
            applier = StreamApplier(
                store_dir,
                wal,
                ApplierOptions(max_latency_seconds=60.0),
            )
            applier.start()
            try:
                wal.append(adds(["y"]))
                assert applier.flush(timeout=30.0)
                assert applier.lag == 0
            finally:
                applier.stop()

    def test_thread_error_surfaces_to_waiters(self, tmp_path, seeded):
        store_dir, adds = seeded
        with WriteAheadLog(tmp_path / "wal") as wal:
            applier = StreamApplier(store_dir, wal)
            applier.start()
            try:
                # Sabotage the store directory so the next batch fails.
                shutil.rmtree(store_dir)
                seq = wal.append(adds(["y"]))
                with pytest.raises(StoreError, match="stream applier failed"):
                    applier.wait_applied(seq, timeout=30.0)
                assert applier.error is not None
            finally:
                applier.stop()
