"""Crash-recovery differential tests: ``kill -9`` the applier anywhere.

A worker subprocess drains a prepared WAL batch by batch while the
parent SIGKILLs it at randomized instants — during shadow copies,
incremental applies, swaps, or between batches.  After every kill the
parent asserts the recovery invariant (the store directory repairs to a
complete, checksum-clean store) and relaunches; once the WAL is fully
applied, the surviving store must be semantically identical to offline
one-by-one application of the same records — same database, class
codes, live occurrences, and negative border.

The in-process test at the bottom covers the reader side: queries
running concurrently with live batches only ever observe committed
versions, monotonically.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.graphs.database import GraphDatabase
from repro.incremental import DatabaseDelta, PatternStore
from repro.serving import StoreReader
from repro.streaming import (
    ApplierOptions,
    StreamApplier,
    WriteAheadLog,
    recover_store,
)
from repro.taxonomy.builders import taxonomy_from_parent_names
from tests.test_streaming_applier import _offline_replay, _store_digest

_WORKER = """
import sys, time
from repro.streaming import ApplierOptions, StreamApplier, WriteAheadLog

store_dir, wal_dir = sys.argv[1], sys.argv[2]
with WriteAheadLog(wal_dir) as wal:
    applier = StreamApplier(
        store_dir, wal, ApplierOptions(max_batch_records=2)
    )
    while applier.apply_next_batch():
        time.sleep(0.03)
print("drained", applier.applied_seq)
"""


def _build_case(tmp_path, seed):
    """A mined seed store plus a randomized WAL of adds and removes."""
    rng = random.Random(seed)
    taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a", "d": "b"})

    def edge_db(names, nodes=("b", "c")):
        db = GraphDatabase(node_labels=taxonomy.interner)
        for name in names:
            db.new_graph(list(nodes), [(0, 1, name)])
        return db

    store_dir = tmp_path / "store"
    Taxogram(
        TaxogramOptions(min_support=0.3, store_out=str(store_dir))
    ).mine(db := edge_db(["x", "x", "y", "y", "x"]), taxonomy)
    del db
    records = []
    labels = ["x", "y", "w"]
    nodes_pool = [("b", "c"), ("d", "c"), ("b", "ghost")]  # ghost -> reject
    for _ in range(10):
        if rng.random() < 0.6:
            names = [rng.choice(labels) for _ in range(rng.randint(1, 2))]
            records.append(
                DatabaseDelta.adding(edge_db(names, rng.choice(nodes_pool)))
            )
        else:
            ids = rng.sample(range(10), rng.randint(1, 2))  # some invalid
            records.append(DatabaseDelta.removing(ids))
    with WriteAheadLog(tmp_path / "wal") as wal:
        for record in records:
            wal.append(record)
    return store_dir, tmp_path / "wal", records


def _run_with_kills(tmp_path, store_dir, wal_dir, rng, max_rounds=40):
    worker = tmp_path / "worker.py"
    worker.write_text(_WORKER)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    kills = 0
    for _ in range(max_rounds):
        proc = subprocess.Popen(
            [sys.executable, str(worker), str(store_dir), str(wal_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        time.sleep(rng.uniform(0.0, 0.35))
        if proc.poll() is None:
            proc.kill()
            proc.wait()
            kills += 1
        else:
            stdout, stderr = proc.communicate()
            assert proc.returncode == 0, stderr.decode()
            assert b"drained" in stdout
            return kills
        # The crash invariant: whatever instant the kill landed, the
        # store repairs to a complete, checksum-clean state and the WAL
        # reopens (repairing a torn tail at worst).
        recover_store(store_dir)
        PatternStore.open(store_dir)
        WriteAheadLog(wal_dir).close()
    pytest.fail("worker never completed the WAL")


def test_sigkill_at_random_points_recovers_bit_identical(tmp_path):
    store_dir, wal_dir, records = _build_case(tmp_path, seed=1)
    oracle = _offline_replay(store_dir, tmp_path / "oracle", records)
    rng = random.Random(2)
    kills = _run_with_kills(tmp_path, store_dir, wal_dir, rng)
    assert _store_digest(store_dir) == _store_digest(oracle)
    # The store's committed offset reached the end of the journal.
    with WriteAheadLog(wal_dir) as wal:
        applier = StreamApplier(store_dir, wal)
        assert applier.lag == 0
        assert applier.drain() == 0
    assert kills >= 1, "no kill ever interrupted the worker"


@pytest.mark.slow
@pytest.mark.parametrize("seed", [3, 4, 5])
def test_sigkill_differential_wide(tmp_path, seed):
    store_dir, wal_dir, records = _build_case(tmp_path, seed=seed)
    oracle = _offline_replay(store_dir, tmp_path / "oracle", records)
    rng = random.Random(seed * 17 + 1)
    _run_with_kills(tmp_path, store_dir, wal_dir, rng)
    assert _store_digest(store_dir) == _store_digest(oracle)


def test_readers_only_observe_committed_versions(tmp_path):
    """Concurrent queries during live batches see a monotone sequence of
    committed versions and never a torn store."""
    store_dir, wal_dir, _records = _build_case(tmp_path, seed=6)
    reader = StoreReader(store_dir)
    versions = [reader.version]
    with WriteAheadLog(wal_dir) as wal:
        applier = StreamApplier(
            store_dir,
            wal,
            ApplierOptions(max_batch_records=1, max_latency_seconds=0.0),
        )
        applier.start()
        try:
            deadline = time.monotonic() + 60.0
            while applier.lag > 0 and applier.error is None:
                assert time.monotonic() < deadline
                answer = reader.query("top_k", k=3)
                versions.append(answer.store_version)
            assert applier.error is None
        finally:
            applier.stop()
    assert versions == sorted(versions)
    # Every batch was one record, so the reader had committed versions
    # to observe all along; the final query sees the final version.
    final = reader.query("top_k", k=3)
    assert final.store_version == StoreReader(store_dir).version
