"""HTTP-level tests for the live ingest service.

The service is exercised for real: ``serve_forever`` on a background
thread, requests through ``urllib`` against the ephemeral port.  Covers
acknowledgement vs read-your-writes, backpressure shedding, flush, lag
reporting, per-record rejection visibility, and that the PR-4 query
endpoints keep answering (against committed versions) while ingest is
live.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.taxogram import Taxogram, TaxogramOptions
from repro.graphs.database import GraphDatabase
from repro.streaming import ApplierOptions, IngestOptions, IngestService
from repro.taxonomy.builders import taxonomy_from_parent_names

ADD_ONE = "t # 0\nv 0 b\nv 1 c\ne 0 1 x\n"


def _request(url, path, doc=None):
    if doc is None:
        req = urllib.request.Request(url + path)
    else:
        req = urllib.request.Request(
            url + path,
            json.dumps(doc).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read()), response
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc


@pytest.fixture
def service(tmp_path):
    taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a"})
    db = GraphDatabase(node_labels=taxonomy.interner)
    for name in ["x", "x", "y"]:
        db.new_graph(["b", "c"], [(0, 1, name)])
    store_dir = tmp_path / "store"
    Taxogram(
        TaxogramOptions(min_support=0.4, store_out=str(store_dir))
    ).mine(db, taxonomy)
    service = IngestService(
        store_dir,
        tmp_path / "wal",
        port=0,
        options=IngestOptions(max_lag_records=4, wait_timeout_seconds=60.0),
        applier_options=ApplierOptions(max_latency_seconds=0.02),
    )
    service.start()
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    host, port = service.address
    try:
        yield service, f"http://{host}:{port}"
    finally:
        service.server.shutdown()
        thread.join(timeout=10)
        service.close()


class TestIngest:
    def test_ack_without_wait(self, service):
        svc, url = service
        status, doc, _ = _request(url, "/ingest", {"add": ADD_ONE})
        assert status == 202
        assert doc["seq"] == 0
        assert doc["applied"] is False
        # Durably journaled even before application.
        assert svc.wal.last_seq == 0

    def test_read_your_writes(self, service):
        svc, url = service
        before = svc.reader.version
        status, doc, _ = _request(
            url, "/ingest", {"add": ADD_ONE, "wait": True}
        )
        assert status == 200
        assert doc["applied"] is True
        assert doc["store_version"] > before
        status, doc, _ = _request(
            url, "/query", {"op": "support", "pattern": ADD_ONE}
        )
        assert status == 200
        assert doc["value"] == 3  # two seed x-graphs + the ingested one

    def test_remove_roundtrip(self, service):
        svc, url = service
        status, _, _ = _request(
            url, "/ingest", {"remove": [0], "wait": True}
        )
        assert status == 200
        status, doc, _ = _request(url, "/health")
        assert doc["database_size"] == 2

    def test_empty_delta_rejected(self, service):
        _, url = service
        status, doc, _ = _request(url, "/ingest", {})
        assert status == 400
        assert "empty" in doc["error"]

    def test_malformed_body_rejected(self, service):
        _, url = service
        status, _, _ = _request(url, "/ingest", {"remove": ["x"]})
        assert status == 400
        status, _, _ = _request(url, "/ingest", {"remove": [0, 0]})
        assert status == 400

    def test_rejected_record_reported_in_lag(self, service):
        _, url = service
        bad = "t # 0\nv 0 nope\n"
        status, _, _ = _request(url, "/ingest", {"add": bad, "wait": True})
        assert status == 200  # journaled and applied (as a rejection)
        _, doc, _ = _request(url, "/lag")
        assert doc["rejected_records"] == 1
        assert doc["lag"] == 0


class TestBackpressure:
    def test_sheds_with_429_when_backlog_full(self, tmp_path):
        taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a"})
        db = GraphDatabase(node_labels=taxonomy.interner)
        for name in ["x", "x", "y"]:
            db.new_graph(["b", "c"], [(0, 1, name)])
        store_dir = tmp_path / "store"
        Taxogram(
            TaxogramOptions(min_support=0.4, store_out=str(store_dir))
        ).mine(db, taxonomy)
        service = IngestService(
            store_dir,
            tmp_path / "wal",
            port=0,
            options=IngestOptions(max_lag_records=2),
        )
        # Applier deliberately NOT started: the backlog can only grow.
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        host, port = service.address
        url = f"http://{host}:{port}"
        try:
            assert _request(url, "/ingest", {"add": ADD_ONE})[0] == 202
            assert _request(url, "/ingest", {"add": ADD_ONE})[0] == 202
            status, doc, response = _request(
                url, "/ingest", {"add": ADD_ONE}
            )
            assert status == 429
            assert doc["lag"] == 2
            assert response.headers.get("Retry-After") == "1"
            # Nothing was journaled for the shed request.
            assert service.wal.last_seq == 1
            _, doc, _ = _request(url, "/lag")
            assert doc["lag"] == 2
        finally:
            service.server.shutdown()
            thread.join(timeout=10)
            service.close(drain=False)

    def test_flush_clears_backlog(self, service):
        svc, url = service
        for _ in range(3):
            assert _request(url, "/ingest", {"add": ADD_ONE})[0] == 202
        status, doc, _ = _request(url, "/flush", {})
        assert status == 200
        assert doc["applied_seq"] == 2
        _, doc, _ = _request(url, "/lag")
        assert doc["lag"] == 0


class TestServingSurface:
    def test_query_endpoints_still_served(self, service):
        _, url = service
        assert _request(url, "/health")[0] == 200
        assert _request(url, "/top?k=2")[0] == 200
        status, doc, _ = _request(url, "/metrics")
        assert status == 200
        assert "counters" in doc

    def test_unknown_paths_are_404(self, service):
        _, url = service
        assert _request(url, "/nope")[0] == 404
        assert _request(url, "/nope", {})[0] == 404

    def test_streaming_metrics_exposed(self, service):
        svc, url = service
        _request(url, "/ingest", {"add": ADD_ONE, "wait": True})
        assert svc.metrics.counter("streaming.wal_appends") == 1
        assert svc.metrics.counter("streaming.batches_applied") >= 1
        assert svc.metrics.counter("streaming.ingest_accepted") == 1


class TestDiskFull:
    """ENOSPC on the WAL volume mid-run: every affected ingest must be
    answered 429 + ``Retry-After`` (back-pressure, nothing acked), the
    log must stay byte-identical, and service must resume untouched
    once space frees up — a 500 or a lost ack is a contract breach."""

    def test_enospc_sheds_429_and_resumes_clean(self, tmp_path, monkeypatch):
        from repro.loadtest.faults import disk_full

        control = tmp_path / "faults.json"
        disk_full(control, False)
        monkeypatch.setenv("REPRO_FAULTPOINTS_FILE", str(control))

        taxonomy = taxonomy_from_parent_names({"b": "a", "c": "a"})
        db = GraphDatabase(node_labels=taxonomy.interner)
        for name in ["x", "x", "y"]:
            db.new_graph(["b", "c"], [(0, 1, name)])
        store_dir = tmp_path / "store"
        Taxogram(
            TaxogramOptions(min_support=0.4, store_out=str(store_dir))
        ).mine(db, taxonomy)
        service = IngestService(
            store_dir,
            tmp_path / "wal",
            port=0,
            applier_options=ApplierOptions(max_latency_seconds=0.02),
        )
        service.start()
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        host, port = service.address
        url = f"http://{host}:{port}"
        try:
            assert _request(url, "/ingest", {"add": ADD_ONE})[0] == 202

            disk_full(control, True)
            status, doc, response = _request(
                url, "/ingest", {"add": ADD_ONE}
            )
            assert status == 429
            assert "WAL volume" in doc["error"]
            assert response.headers.get("Retry-After") == "1"
            # Nothing acked, nothing journaled for the shed request.
            assert service.wal.last_seq == 0
            assert service.metrics.counter("streaming.ingest_disk_full") == 1
            # Queries keep answering while ingest sheds.
            assert _request(url, "/health")[0] == 200

            disk_full(control, False)
            status, doc, _ = _request(
                url, "/ingest", {"add": ADD_ONE, "wait": True}
            )
            assert (status, doc["seq"]) == (200, 1)
        finally:
            service.server.shutdown()
            thread.join(timeout=10)
            service.close(drain=False)
