"""Unit tests for the segmented write-ahead log.

Durability semantics are pinned directly against the on-disk bytes: a
torn tail (crashed append) is repaired silently on open, while a bit
flip away from the tail — acknowledged data — must raise instead of
being dropped.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import WALError
from repro.incremental import DatabaseDelta
from repro.observability import MetricsRegistry
from repro.streaming import WriteAheadLog


def _delta(tag: str) -> DatabaseDelta:
    return DatabaseDelta(add_text=f"t # 0\nv 0 {tag}\n")


def _deltas(n: int) -> list[DatabaseDelta]:
    return [_delta(f"l{i}") for i in range(n)]


class TestAppendRead:
    def test_roundtrip_in_order(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            seqs = [wal.append(d) for d in _deltas(5)]
            assert seqs == [0, 1, 2, 3, 4]
            records = wal.read_from(0)
        assert [r.seq for r in records] == seqs
        assert [r.delta for r in records] == _deltas(5)

    def test_read_from_offset_and_limit(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            for d in _deltas(6):
                wal.append(d)
            assert [r.seq for r in wal.read_from(4)] == [4, 5]
            assert [r.seq for r in wal.read_from(1, max_records=2)] == [1, 2]
            assert wal.read_from(6) == []

    def test_sequence_survives_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            for d in _deltas(3):
                wal.append(d)
        with WriteAheadLog(tmp_path / "wal") as wal:
            assert wal.next_seq == 3
            assert wal.append(_delta("late")) == 3
            assert [r.seq for r in wal.read_from(0)] == [0, 1, 2, 3]

    def test_remove_ids_roundtrip(self, tmp_path):
        delta = DatabaseDelta(remove_ids=(4, 1, 7))
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(delta)
            assert wal.read_from(0)[0].delta == delta

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.close()
        with pytest.raises(WALError, match="closed"):
            wal.append(_delta("x"))

    def test_wait_for(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            assert not wal.wait_for(0, timeout=0.01)
            t = threading.Timer(0.05, lambda: wal.append(_delta("x")))
            t.start()
            try:
                assert wal.wait_for(0, timeout=5.0)
            finally:
                t.cancel()


class TestSegments:
    def test_rotation_and_truncation(self, tmp_path):
        metrics = MetricsRegistry()
        with WriteAheadLog(
            tmp_path / "wal", segment_max_bytes=1, metrics=metrics
        ) as wal:
            for d in _deltas(4):
                wal.append(d)
            # One record per segment: 4 closed + the fresh active one.
            segments = sorted(p.name for p in (tmp_path / "wal").iterdir())
            assert len(segments) == 5
            assert metrics.counter("streaming.wal_rotations") == 4
            removed = wal.truncate_applied(2)
            assert removed == 3
            assert [r.seq for r in wal.read_from(3)] == [3]
            with pytest.raises(WALError, match="truncated"):
                wal.read_from(0)
        # Sequences still resume correctly after truncation + reopen.
        with WriteAheadLog(tmp_path / "wal", segment_max_bytes=1) as wal:
            assert wal.next_seq == 4

    def test_active_segment_never_truncated(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            for d in _deltas(3):
                wal.append(d)
            assert wal.truncate_applied(2) == 0
            assert [r.seq for r in wal.read_from(0)] == [0, 1, 2]

    def test_metrics_count_appends_and_bytes(self, tmp_path):
        metrics = MetricsRegistry()
        with WriteAheadLog(tmp_path / "wal", metrics=metrics) as wal:
            wal.append(_delta("x"))
            wal.append(_delta("y"))
        assert metrics.counter("streaming.wal_appends") == 2
        assert metrics.counter("streaming.wal_bytes") > 0


def _only_segment(wal_dir):
    (segment,) = sorted(wal_dir.iterdir())
    return segment


class TestCorruption:
    def test_torn_tail_truncated_silently(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir) as wal:
            for d in _deltas(3):
                wal.append(d)
        segment = _only_segment(wal_dir)
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])  # crash mid-append of record 2
        metrics = MetricsRegistry()
        with WriteAheadLog(wal_dir, metrics=metrics) as wal:
            assert wal.next_seq == 2
            assert [r.seq for r in wal.read_from(0)] == [0, 1]
            # The torn bytes are gone: a fresh append reuses seq 2.
            assert wal.append(_delta("retry")) == 2
        assert metrics.counter("streaming.wal_torn_records") == 1

    def test_torn_header_truncated_silently(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir) as wal:
            wal.append(_delta("x"))
        segment = _only_segment(wal_dir)
        segment.write_bytes(segment.read_bytes() + b"\x00\x01")
        with WriteAheadLog(wal_dir) as wal:
            assert wal.next_seq == 1

    def test_bit_flip_in_final_record_dropped_on_open(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir) as wal:
            wal.append(_delta("x"))
            wal.append(_delta("y"))
        segment = _only_segment(wal_dir)
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF  # payload byte of the last record
        segment.write_bytes(bytes(data))
        with WriteAheadLog(wal_dir) as wal:
            assert wal.next_seq == 1

    def test_bit_flip_before_tail_raises(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir) as wal:
            wal.append(_delta("x"))
            first_end = wal._active_file.tell()
            wal.append(_delta("y"))
        segment = _only_segment(wal_dir)
        data = bytearray(segment.read_bytes())
        data[first_end - 1] ^= 0xFF  # corrupt record 0, not the tail
        segment.write_bytes(bytes(data))
        with pytest.raises(WALError, match="corrupt"):
            WriteAheadLog(wal_dir)

    def test_bit_flip_in_closed_segment_raises_on_read(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir, segment_max_bytes=1) as wal:
            wal.append(_delta("x"))
            wal.append(_delta("y"))
        closed = sorted(wal_dir.iterdir())[0]
        data = bytearray(closed.read_bytes())
        data[-1] ^= 0xFF
        closed.write_bytes(bytes(data))
        # Opening only scans the active segment; the flip surfaces when
        # the closed segment is read back.
        with WriteAheadLog(wal_dir, segment_max_bytes=1) as wal:
            with pytest.raises(WALError, match="corrupt"):
                wal.read_from(0)


class TestSegmentReadAPI:
    """Read-only segment surface used by replication followers.

    Followers tail the log without the writer lock: published lengths
    are sampled under the lock (and are always frame boundaries), but
    the bytes themselves are read from an independent file handle.
    """

    def test_segment_views_cover_the_log(self, tmp_path):
        from repro.streaming import SegmentView

        with WriteAheadLog(tmp_path / "wal", segment_max_bytes=1) as wal:
            for d in _deltas(3):
                wal.append(d)
            views = wal.segment_views()
            assert all(isinstance(v, SegmentView) for v in views)
            # segment_max_bytes=1 seals a segment after every append.
            assert [v.sealed for v in views] == [True, True, True, False]
            assert views[0].start_seq == 0
            assert views[-1].end_seq == wal.next_seq
            # Views tile the sequence space with no gaps.
            for left, right in zip(views, views[1:]):
                assert left.end_seq == right.start_seq
            assert sum(v.record_count for v in views) == 3

    def test_chunked_reads_reassemble_every_record(self, tmp_path):
        from repro.streaming import decode_frames

        with WriteAheadLog(tmp_path / "wal") as wal:
            deltas = _deltas(7)
            for d in deltas:
                wal.append(d)
            view = wal.segment_views()[0]
            # Fetch in tiny chunks so frames are split mid-byte-range,
            # exactly as a follower with a small fetch budget would.
            data = b""
            offset = 0
            while True:
                chunk = wal.read_segment_chunk(view.start_seq, offset, 13)
                if not chunk:
                    break
                data += chunk
                offset += len(chunk)
            assert offset == view.size_bytes
        records, consumed = decode_frames(data, view.start_seq)
        assert consumed == len(data)  # published length is frame-aligned
        assert [r.seq for r in records] == list(range(7))
        assert [r.delta for r in records] == deltas

    def test_decode_frames_buffers_partial_tail(self, tmp_path):
        from repro.streaming import decode_frames

        with WriteAheadLog(tmp_path / "wal") as wal:
            for d in _deltas(2):
                wal.append(d)
            view = wal.segment_views()[0]
            data = wal.read_segment_chunk(view.start_seq, 0, view.size_bytes)
        cut = len(data) - 5  # sever the last frame
        records, consumed = decode_frames(data[:cut], 0)
        assert [r.seq for r in records] == [0]
        assert consumed < cut  # partial frame left unconsumed
        # Appending the remainder completes the frame.
        records, consumed2 = decode_frames(data[consumed:], 1)
        assert [r.seq for r in records] == [1]
        assert consumed + consumed2 == len(data)

    def test_decode_frames_checksum_mismatch_raises(self, tmp_path):
        from repro.streaming import decode_frames

        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(_delta("x"))
            view = wal.segment_views()[0]
            data = bytearray(
                wal.read_segment_chunk(view.start_seq, 0, view.size_bytes)
            )
        data[-1] ^= 0xFF
        with pytest.raises(WALError, match="corrupt"):
            decode_frames(bytes(data), 0)

    def test_torn_tail_never_published(self, tmp_path):
        """A torn append repaired on reopen is invisible to readers:
        the published length shrinks back to the last whole frame."""
        from repro.streaming import decode_frames

        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir) as wal:
            for d in _deltas(3):
                wal.append(d)
        segment = _only_segment(wal_dir)
        segment.write_bytes(segment.read_bytes()[:-7])  # torn record 2
        with WriteAheadLog(wal_dir) as wal:
            view = wal.segment_views()[0]
            assert view.end_seq == 2
            data = wal.read_segment_chunk(view.start_seq, 0, 1 << 20)
            assert len(data) == view.size_bytes
        records, consumed = decode_frames(data, 0)
        assert consumed == len(data)
        assert [r.seq for r in records] == [0, 1]

    def test_read_chunk_validates_arguments(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(_delta("x"))
            with pytest.raises(ValueError):
                wal.read_segment_chunk(0, -1, 10)
            with pytest.raises(ValueError):
                wal.read_segment_chunk(0, 0, -1)
            with pytest.raises(WALError, match="does not exist"):
                wal.read_segment_chunk(99, 0, 10)
            # Past the published length is empty, not an error.
            assert wal.read_segment_chunk(0, 1 << 20, 10) == b""

    def test_initial_seq_positions_an_empty_log(self, tmp_path):
        """A follower whose store already committed seq K re-creates its
        local WAL at K+1 instead of renumbering from zero."""
        with WriteAheadLog(tmp_path / "wal", initial_seq=7) as wal:
            assert wal.next_seq == 7
            assert wal.append(_delta("x")) == 7
            views = wal.segment_views()
            assert views[0].start_seq == 7
        with WriteAheadLog(tmp_path / "wal") as wal:
            assert wal.next_seq == 8


class TestDiskFullFaultpoint:
    """The ``wal.append`` fault point (errno action): an injected
    ENOSPC must leave the log byte-identical — nothing half-written,
    nothing acked — and lift cleanly when the volume "frees up"."""

    def test_errno_action_raises_configured_oserror(self, tmp_path):
        from repro.util.faultpoints import Faultpoints

        control = tmp_path / "faults.json"
        points = Faultpoints(str(control))
        points.fire("wal.append")  # missing file: never an error
        control.write_text('{"wal.append": {"errno": 28}}')
        with pytest.raises(OSError) as info:
            points.fire("wal.append")
        assert info.value.errno == 28
        points.fire("wal.fsync")  # other points unaffected
        control.write_text("not json at all")
        points.fire("wal.append")  # malformed file means no faults

    def test_append_enospc_leaves_log_byte_identical(
        self, tmp_path, monkeypatch
    ):
        from repro.loadtest.faults import disk_full

        control = tmp_path / "faults.json"
        disk_full(control, False)
        monkeypatch.setenv("REPRO_FAULTPOINTS_FILE", str(control))
        wal = WriteAheadLog(tmp_path / "wal")
        try:
            assert wal.append(_delta("a")) == 0
            segment = sorted((tmp_path / "wal").glob("wal-*.seg"))[-1]
            before = segment.read_bytes()

            disk_full(control, True)
            for _ in range(3):
                with pytest.raises(OSError) as info:
                    wal.append(_delta("b"))
                assert info.value.errno == 28
            # Byte-identical log, no sequence consumed or published.
            assert segment.read_bytes() == before
            assert wal.last_seq == 0

            disk_full(control, False)
            assert wal.append(_delta("c")) == 1
        finally:
            wal.close()
        # Recovery sees exactly the two acked records; the shed
        # appends left no trace to repair.
        reopened = WriteAheadLog(tmp_path / "wal")
        try:
            texts = [
                record.delta.add_text for record in reopened.read_from(0)
            ]
            assert texts == ["t # 0\nv 0 a\n", "t # 0\nv 0 c\n"]
        finally:
            reopened.close()
