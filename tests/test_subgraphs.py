"""Tests for connected-subgraph enumeration."""

from __future__ import annotations

import random
from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.graphs.subgraphs import (
    connected_edge_subgraphs,
    connected_subgraph_node_sets,
    induced_subgraph,
)


def _random_graph(rng: random.Random, max_nodes: int = 6) -> Graph:
    n = rng.randint(1, max_nodes)
    g = Graph()
    for _ in range(n):
        g.add_node(rng.randrange(3))
    present = set()
    for _ in range(rng.randint(0, 2 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or (min(u, v), max(u, v)) in present:
            continue
        present.add((min(u, v), max(u, v)))
        g.add_edge(u, v, rng.randrange(2))
    return g


def _is_connected_node_set(g: Graph, nodes: frozenset[int]) -> bool:
    nodes = set(nodes)
    start = next(iter(nodes))
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in g.neighbors(u):
            if v in nodes and v not in seen:
                seen.add(v)
                stack.append(v)
    return seen == nodes


class TestNodeSets:
    def test_triangle_exhaustive(self):
        g = Graph.from_edges([0, 0, 0], [(0, 1), (1, 2), (0, 2)])
        sets = list(connected_subgraph_node_sets(g, 3))
        assert len(sets) == len(set(sets)), "duplicates emitted"
        expected = {
            frozenset(s)
            for size in (1, 2, 3)
            for s in combinations(range(3), size)
        }
        assert set(sets) == expected  # triangle: every subset is connected

    def test_path_excludes_disconnected_pair(self):
        g = Graph.from_edges([0, 0, 0], [(0, 1), (1, 2)])
        sets = set(connected_subgraph_node_sets(g, 3))
        assert frozenset((0, 2)) not in sets
        assert frozenset((0, 1, 2)) in sets

    def test_max_nodes_zero(self):
        g = Graph.from_edges([0], [])
        assert list(connected_subgraph_node_sets(g, 0)) == []

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        g = _random_graph(rng)
        max_nodes = rng.randint(1, g.num_nodes)
        emitted = list(connected_subgraph_node_sets(g, max_nodes))
        assert len(emitted) == len(set(emitted)), "duplicates emitted"
        expected = {
            frozenset(combo)
            for size in range(1, max_nodes + 1)
            for combo in combinations(range(g.num_nodes), size)
            if _is_connected_node_set(g, frozenset(combo))
        }
        assert set(emitted) == expected


class TestInducedSubgraph:
    def test_labels_and_edges_preserved(self):
        g = Graph.from_edges([5, 6, 7], [(0, 1, 3), (1, 2, 4)])
        sub = induced_subgraph(g, {1, 2})
        assert sub.node_labels() == [6, 7]
        assert list(sub.edges()) == [(0, 1, 4)]

    def test_induced_includes_all_internal_edges(self):
        g = Graph.from_edges([0, 0, 0], [(0, 1), (1, 2), (0, 2)])
        sub = induced_subgraph(g, {0, 1, 2})
        assert sub.num_edges == 3


class TestEdgeSubgraphs:
    def test_triangle_edge_subgraphs(self):
        g = Graph.from_edges([0, 0, 0], [(0, 1), (1, 2), (0, 2)])
        subs = list(connected_edge_subgraphs(g, 3))
        # 3 single edges + 3 two-edge paths + 1 triangle = 7
        assert len(subs) == 7
        edge_counts = sorted(sub.num_edges for sub, _nodes in subs)
        assert edge_counts == [1, 1, 1, 2, 2, 2, 3]

    def test_mapping_points_to_original_nodes(self):
        g = Graph.from_edges([5, 6, 7], [(0, 1), (1, 2)])
        for sub, mapping in connected_edge_subgraphs(g, 2):
            for new_id, old_id in enumerate(mapping):
                assert sub.node_label(new_id) == g.node_label(old_id)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_unique_and_connected(self, seed):
        rng = random.Random(seed)
        g = _random_graph(rng)
        seen = set()
        for sub, mapping in connected_edge_subgraphs(g, 3):
            assert sub.is_connected()
            assert 1 <= sub.num_edges <= 3
            key = frozenset(
                (mapping[u], mapping[v], e) for u, v, e in sub.edges()
            )
            assert key not in seen, "edge set emitted twice"
            seen.add(key)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_count_matches_naive(self, seed):
        rng = random.Random(seed)
        g = _random_graph(rng, max_nodes=5)
        edges = list(g.edges())
        naive = 0
        for size in range(1, 4):
            for combo in combinations(range(len(edges)), size):
                nodes = set()
                sub = Graph()
                remap = {}
                ok = True
                for idx in combo:
                    u, v, e = edges[idx]
                    nodes.update((u, v))
                for node in sorted(nodes):
                    remap[node] = sub.add_node(g.node_label(node))
                for idx in combo:
                    u, v, e = edges[idx]
                    sub.add_edge(remap[u], remap[v], e)
                if sub.is_connected() and sub.num_nodes > 0:
                    naive += 1
        emitted = sum(1 for _ in connected_edge_subgraphs(g, 3))
        assert emitted == naive
