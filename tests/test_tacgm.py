"""Tests for the TAcGM bottom-up comparator."""

from __future__ import annotations

import pytest

from repro.core.tacgm import TAcGM, TAcGMOptions
from repro.core.taxogram import mine
from repro.exceptions import MemoryBudgetExceeded
from repro.graphs.database import GraphDatabase
from repro.taxonomy.builders import taxonomy_from_parent_names


def _fixture():
    tax = taxonomy_from_parent_names(
        {"root": [], "a": "root", "b": "root", "a1": "a", "b1": "b"}
    )
    db = GraphDatabase(node_labels=tax.interner)
    db.new_graph(["a1", "b1"], [(0, 1, "x")])
    db.new_graph(["a", "b"], [(0, 1, "x")])
    db.new_graph(["a1", "b", "b1"], [(0, 1, "x"), (1, 2, "x")])
    return db, tax


class TestMining:
    def test_matches_taxogram(self):
        db, tax = _fixture()
        for sigma in (0.34, 0.67, 1.0):
            expected = mine(db, tax, min_support=sigma, max_edges=2)
            got = TAcGM(TAcGMOptions(min_support=sigma, max_edges=2)).mine(db, tax)
            assert got.pattern_codes() == expected.pattern_codes(), sigma

    def test_algorithm_label_and_counters(self):
        db, tax = _fixture()
        result = TAcGM(TAcGMOptions(min_support=1.0, max_edges=2)).mine(db, tax)
        assert result.algorithm == "tacgm"
        # The bottom-up approach performs per-(pattern, graph) tests.
        assert result.counters.isomorphism_tests > 0
        assert result.counters.memory_cells_peak > 0
        assert "total" in result.stage_seconds

    def test_no_elimination_keeps_overgeneralized(self):
        db, tax = _fixture()
        strict = TAcGM(
            TAcGMOptions(min_support=1.0, max_edges=1)
        ).mine(db, tax)
        loose = TAcGM(
            TAcGMOptions(
                min_support=1.0, max_edges=1, eliminate_overgeneralized=False
            )
        ).mine(db, tax)
        assert len(loose.patterns) > len(strict.patterns)
        assert {p.code for p in strict.patterns} <= {
            p.code for p in loose.patterns
        }

    def test_isomorphism_test_count_scales_with_patterns(self):
        # The paper's Example 1.2 point: bottom-up counts shared
        # occurrences once per pattern, so its test count dwarfs the
        # pattern count.
        db, tax = _fixture()
        result = TAcGM(TAcGMOptions(min_support=0.34, max_edges=2)).mine(db, tax)
        assert result.counters.isomorphism_tests >= len(result.patterns)


class TestMemoryBudget:
    def test_budget_exceeded_raises(self):
        db, tax = _fixture()
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            TAcGM(
                TAcGMOptions(min_support=0.34, max_edges=3, memory_budget=10)
            ).mine(db, tax)
        assert excinfo.value.budget == 10
        assert excinfo.value.used > 10

    def test_generous_budget_completes(self):
        db, tax = _fixture()
        result = TAcGM(
            TAcGMOptions(min_support=1.0, max_edges=2, memory_budget=10_000_000)
        ).mine(db, tax)
        assert result.patterns

    def test_budget_is_deterministic(self):
        db, tax = _fixture()
        peaks = set()
        for _ in range(3):
            result = TAcGM(
                TAcGMOptions(min_support=0.67, max_edges=2)
            ).mine(db, tax)
            peaks.add(result.counters.memory_cells_peak)
        assert len(peaks) == 1
