"""End-to-end tests for the Taxogram miner."""

from __future__ import annotations

import pytest

from repro.core.results import format_pattern
from repro.core.taxogram import Taxogram, TaxogramOptions, mine, mine_baseline
from repro.graphs.database import GraphDatabase
from repro.taxonomy.builders import taxonomy_from_parent_names


class TestMotivatingExample:
    """The paper's Figure 1.1-1.3 scenario (see conftest fixtures)."""

    def test_implied_pattern_found(self, go_excerpt, pathway_db):
        result = mine(pathway_db, go_excerpt, min_support=1.0)
        names = {
            tuple(
                sorted(
                    go_excerpt.name_of(p.graph.node_label(v))
                    for v in p.graph.nodes()
                )
            )
            for p in result
            if p.num_edges == 1
        }
        # The transporter-helicase association is implied by the taxonomy.
        assert ("helicase", "transporter") in names

    def test_all_patterns_fully_supported(self, go_excerpt, pathway_db):
        result = mine(pathway_db, go_excerpt, min_support=1.0)
        assert result.patterns
        for pattern in result:
            assert pattern.support == 1.0
            assert pattern.support_set == frozenset({0, 1})

    def test_result_metadata(self, go_excerpt, pathway_db):
        result = mine(pathway_db, go_excerpt, min_support=1.0)
        assert result.algorithm == "taxogram"
        assert result.database_size == 2
        assert result.min_support == 1.0
        assert result.counters.pattern_classes >= 1
        assert set(result.stage_seconds) == {
            "relabel", "mine_classes", "specialize",
        }
        assert result.total_seconds >= 0.0
        assert "taxogram" in result.summary()

    def test_patterns_sorted_and_iterable(self, go_excerpt, pathway_db):
        result = mine(pathway_db, go_excerpt, min_support=1.0)
        sizes = [p.num_edges for p in result]
        assert sizes == sorted(sizes)
        assert len(result) == len(result.patterns)


class TestOverGeneralization:
    def test_paper_definition_on_figure_2_2_style_case(self):
        # GB(h-a) is over-generalized because GD(h-d) has the same support.
        tax = taxonomy_from_parent_names({"d": "a", "h": []})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["h", "d"], [(0, 1)])
        db.new_graph(["h", "d"], [(0, 1)])
        result = mine(db, tax, min_support=1.0)
        rendered = {format_pattern(p, tax.interner) for p in result}
        assert rendered == {"[0:d, 1:h | 0-1] sup=1.000"}

    def test_general_pattern_kept_when_strictly_more_frequent(self):
        tax = taxonomy_from_parent_names({"b": "a", "c": "a"})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["b", "b"], [(0, 1)])
        db.new_graph(["c", "c"], [(0, 1)])
        result = mine(db, tax, min_support=1.0)
        # Only a-a spans both graphs; b-b and c-c have support 1/2 < 1.
        assert len(result) == 1
        pattern = result.patterns[0]
        assert tax.name_of(pattern.graph.node_label(0)) == "a"
        assert pattern.support == 1.0

    def test_lemma3_non_overgeneralized_ancestor_of_overgeneralized(self):
        # d1/d2 under m, m under r; occurrences split across m's children:
        # (m, x) is over-generalized only if one child keeps full support.
        tax = taxonomy_from_parent_names({"m": "r", "d1": "m", "d2": "m", "x": []})
        db = GraphDatabase(node_labels=tax.interner)
        db.new_graph(["d1", "x"], [(0, 1)])
        db.new_graph(["d2", "x"], [(0, 1)])
        result = mine(db, tax, min_support=1.0)
        kept = {
            tax.name_of(p.graph.node_label(v))
            for p in result
            for v in p.graph.nodes()
        }
        # m survives: neither d1-x nor d2-x keeps support 1.
        assert "m" in kept
        assert "d1" not in kept
        assert "d2" not in kept
        # r-x is over-generalized by m-x (same support) and removed.
        assert "r" not in kept


class TestOptions:
    def test_baseline_has_no_enhancements_label(self, go_excerpt, pathway_db):
        result = mine_baseline(pathway_db, go_excerpt, min_support=1.0)
        assert result.algorithm == "baseline"

    def test_baseline_equals_taxogram(self, go_excerpt, pathway_db):
        fast = mine(pathway_db, go_excerpt, min_support=0.5)
        slow = mine_baseline(pathway_db, go_excerpt, min_support=0.5)
        assert fast.pattern_codes() == slow.pattern_codes()

    def test_each_enhancement_alone_preserves_results(
        self, go_excerpt, pathway_db
    ):
        reference = mine(pathway_db, go_excerpt, min_support=0.5)
        for flag in (
            "enhancement_descendant_pruning",
            "enhancement_frequent_label_filter",
            "enhancement_occurrence_collapse",
            "enhancement_taxonomy_contraction",
        ):
            base = TaxogramOptions.baseline(min_support=0.5)
            options = base.__class__(**{**base.__dict__, flag: True})
            result = Taxogram(options).mine(pathway_db, go_excerpt)
            assert result.pattern_codes() == reference.pattern_codes(), flag

    def test_with_support_helper(self):
        options = TaxogramOptions(min_support=0.2).with_support(0.7)
        assert options.min_support == 0.7

    def test_max_edges_respected(self, go_excerpt, pathway_db):
        result = mine(pathway_db, go_excerpt, min_support=0.5, max_edges=1)
        assert result.patterns
        assert all(p.num_edges == 1 for p in result)

    def test_counters_track_work(self, go_excerpt, pathway_db):
        result = mine(pathway_db, go_excerpt, min_support=0.5)
        counters = result.counters
        assert counters.bitset_intersections > 0
        assert counters.occurrence_index_updates > 0
        assert counters.candidates_enumerated >= len(result.patterns)
        assert counters.embedding_extensions > 0


class TestPatternClassIds:
    def test_same_class_shares_id(self, go_excerpt, pathway_db):
        result = mine(pathway_db, go_excerpt, min_support=0.5)
        by_class: dict[int, set[tuple]] = {}
        for pattern in result:
            key = tuple(sorted(e[:2] for e in pattern.code.edges))
            by_class.setdefault(pattern.class_id, set()).add(
                (pattern.num_nodes, pattern.num_edges)
            )
        # All members of a class share the structure (node/edge counts).
        for shapes in by_class.values():
            assert len(shapes) == 1
