"""Unit and property tests for the taxonomy DAG."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TaxonomyError
from repro.taxonomy.builders import taxonomy_from_parent_names
from repro.taxonomy.taxonomy import Taxonomy
from repro.util.interner import LabelInterner
from tests.conftest import make_random_taxonomy


class TestConstruction:
    def test_members_include_implicit_parents(self):
        tax = taxonomy_from_parent_names({"b": "a"})
        assert len(tax) == 2
        assert tax.id_of("a") in tax

    def test_cycle_rejected(self):
        interner = LabelInterner(["a", "b"])
        with pytest.raises(TaxonomyError, match="cycle"):
            Taxonomy({0: (1,), 1: (0,)}, interner)

    def test_self_parent_rejected(self):
        interner = LabelInterner(["a"])
        with pytest.raises(TaxonomyError, match="own parent"):
            Taxonomy({0: (0,)}, interner)

    def test_uninterned_label_rejected(self):
        interner = LabelInterner(["a"])
        with pytest.raises(TaxonomyError, match="not interned"):
            Taxonomy({5: ()}, interner)

    def test_duplicate_parents_deduped(self):
        interner = LabelInterner(["a", "b"])
        tax = Taxonomy({1: (0, 0), 0: ()}, interner)
        assert tax.parents_of(1) == (0,)
        assert tax.relationship_count() == 1


class TestStructure:
    @pytest.fixture
    def diamond(self) -> Taxonomy:
        #      root
        #      /  \
        #     l    r
        #      \  /
        #      leaf
        return taxonomy_from_parent_names(
            {"root": [], "l": "root", "r": "root", "leaf": ["l", "r"]}
        )

    def test_roots_and_leaves(self, diamond):
        assert [diamond.name_of(r) for r in diamond.roots()] == ["root"]
        assert [diamond.name_of(l) for l in diamond.leaves()] == ["leaf"]

    def test_children_and_parents(self, diamond):
        root = diamond.id_of("root")
        leaf = diamond.id_of("leaf")
        assert {diamond.name_of(c) for c in diamond.children_of(root)} == {"l", "r"}
        assert {diamond.name_of(p) for p in diamond.parents_of(leaf)} == {"l", "r"}

    def test_ancestors_through_dag(self, diamond):
        leaf = diamond.id_of("leaf")
        names = {diamond.name_of(a) for a in diamond.ancestors_or_self(leaf)}
        assert names == {"leaf", "l", "r", "root"}
        assert diamond.strict_ancestors(leaf) == (
            diamond.ancestors_or_self(leaf) - {leaf}
        )

    def test_descendants(self, diamond):
        root = diamond.id_of("root")
        names = {diamond.name_of(d) for d in diamond.descendants_or_self(root)}
        assert names == {"root", "l", "r", "leaf"}

    def test_matches_semantics(self, diamond):
        root, leaf = diamond.id_of("root"), diamond.id_of("leaf")
        assert diamond.matches(root, leaf)  # ancestor matches descendant
        assert diamond.matches(leaf, leaf)  # every label matches itself
        assert not diamond.matches(leaf, root)  # not the other way round

    def test_depth(self, diamond):
        assert diamond.depth_of(diamond.id_of("root")) == 0
        assert diamond.depth_of(diamond.id_of("leaf")) == 2
        assert diamond.max_depth() == 2

    def test_unknown_label_raises(self, diamond):
        with pytest.raises(TaxonomyError, match="not in the taxonomy"):
            diamond.parents_of(10_000)

    def test_average_ancestor_count(self, diamond):
        # root: 0, l: 1, r: 1, leaf: 3 -> 5/4
        assert diamond.average_ancestor_count() == pytest.approx(1.25)

    def test_topological_labels_order(self, diamond):
        order = list(diamond.labels())
        for label in order:
            for parent in diamond.parents_of(label):
                assert order.index(parent) < order.index(label)


class TestMostGeneralAncestor:
    def test_unique_root(self):
        tax = taxonomy_from_parent_names({"b": "a", "c": "b"})
        assert tax.name_of(tax.most_general_ancestor(tax.id_of("c"))) == "a"

    def test_ambiguous_raises(self):
        tax = taxonomy_from_parent_names({"x": ["r1", "r2"]})
        with pytest.raises(TaxonomyError, match="most general"):
            tax.most_general_ancestor(tax.id_of("x"))

    def test_with_single_root_repairs(self):
        tax = taxonomy_from_parent_names({"x": ["r1", "r2"]})
        fixed = tax.with_single_root()
        assert len(fixed.roots()) == 1
        x = fixed.id_of("x")
        assert fixed.most_general_ancestor(x) == fixed.roots()[0]

    def test_with_single_root_noop_when_single(self):
        tax = taxonomy_from_parent_names({"b": "a"})
        assert tax.with_single_root() is tax

    def test_with_single_root_name_clash(self):
        tax = taxonomy_from_parent_names({"x": ["r1", "r2"], "<root>": "r1"})
        with pytest.raises(TaxonomyError, match="already names"):
            tax.with_single_root()


class TestRestriction:
    def test_restricted_preserves_reachability(self):
        tax = taxonomy_from_parent_names({"b": "a", "c": "b", "d": "c"})
        restricted = tax.restricted_to(
            [tax.id_of("a"), tax.id_of("c"), tax.id_of("d")]
        )
        c = restricted.id_of("c")
        # b was removed; c's nearest kept ancestor is a.
        assert {restricted.name_of(p) for p in restricted.parents_of(c)} == {"a"}
        assert restricted.is_ancestor_or_self(restricted.id_of("a"), c)

    def test_restricted_drops_transitively_implied_parents(self):
        tax = taxonomy_from_parent_names(
            {"mid": "top", "leaf": ["mid", "top"]}
        )
        restricted = tax.restricted_to(
            [tax.id_of("top"), tax.id_of("mid"), tax.id_of("leaf")]
        )
        leaf = restricted.id_of("leaf")
        # 'top' is implied through 'mid'; keep only the minimal parent set.
        assert {restricted.name_of(p) for p in restricted.parents_of(leaf)} == {
            "mid"
        }

    def test_contracted_removes_and_splices(self):
        tax = taxonomy_from_parent_names({"b": "a", "c": "b"})
        contracted = tax.contracted([tax.id_of("b")])
        assert "b" not in {contracted.name_of(l) for l in contracted.labels()}
        c = contracted.id_of("c")
        assert {contracted.name_of(p) for p in contracted.parents_of(c)} == {"a"}


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_ancestor_transitivity(self, seed):
        rng = random.Random(seed)
        tax = make_random_taxonomy(
            rng, LabelInterner(), rng.randint(3, 12), dag=True
        )
        labels = list(tax.labels())
        for label in labels:
            for anc in tax.ancestors_or_self(label):
                assert tax.ancestors_or_self(anc) <= tax.ancestors_or_self(label)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_ancestors_descendants_are_inverse(self, seed):
        rng = random.Random(seed)
        tax = make_random_taxonomy(
            rng, LabelInterner(), rng.randint(3, 12), dag=True
        )
        for a in tax.labels():
            for b in tax.labels():
                assert (a in tax.ancestors_or_self(b)) == (
                    b in tax.descendants_or_self(a)
                )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_every_label_is_own_ancestor(self, seed):
        rng = random.Random(seed)
        tax = make_random_taxonomy(rng, LabelInterner(), rng.randint(2, 10))
        for label in tax.labels():
            assert label in tax.ancestors_or_self(label)
            assert label in tax.descendants_or_self(label)
