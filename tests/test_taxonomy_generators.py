"""Tests for the synthetic taxonomy generator and the GO/atom presets."""

from __future__ import annotations

import pytest

from repro.exceptions import TaxonomyError
from repro.taxonomy.atoms import PTE_ATOM_GROUPS, PTE_LEAF_ATOMS, pte_atom_taxonomy
from repro.taxonomy.generators import TaxonomyGeneratorConfig, generate_taxonomy
from repro.taxonomy.go import go_like_taxonomy


class TestGenerator:
    def test_concept_count_and_single_root(self):
        tax = generate_taxonomy(TaxonomyGeneratorConfig(concept_count=200, depth=6))
        assert len(tax) == 200
        assert len(tax.roots()) == 1

    def test_depth_reached(self):
        tax = generate_taxonomy(
            TaxonomyGeneratorConfig(concept_count=100, depth=7, seed=3)
        )
        assert tax.max_depth() == 7

    def test_relationship_count_honored(self):
        config = TaxonomyGeneratorConfig(
            concept_count=150, depth=5, relationship_count=220, seed=1
        )
        tax = generate_taxonomy(config)
        # Tree minimum is 149; extra edges should get close to the target.
        assert 149 <= tax.relationship_count() <= 220
        assert tax.relationship_count() >= 200

    def test_deterministic_by_seed(self):
        config = TaxonomyGeneratorConfig(concept_count=80, depth=5, seed=42)
        t1 = generate_taxonomy(config)
        t2 = generate_taxonomy(config)
        assert serializeable(t1) == serializeable(t2)

    def test_different_seeds_differ(self):
        base = TaxonomyGeneratorConfig(concept_count=80, depth=5, seed=1)
        other = TaxonomyGeneratorConfig(concept_count=80, depth=5, seed=2)
        assert serializeable(generate_taxonomy(base)) != serializeable(
            generate_taxonomy(other)
        )

    def test_single_concept(self):
        tax = generate_taxonomy(TaxonomyGeneratorConfig(concept_count=1, depth=0))
        assert len(tax) == 1

    def test_invalid_configs_rejected(self):
        with pytest.raises(TaxonomyError):
            generate_taxonomy(TaxonomyGeneratorConfig(concept_count=0))
        with pytest.raises(TaxonomyError):
            generate_taxonomy(
                TaxonomyGeneratorConfig(concept_count=10, depth=3,
                                        relationship_count=2)
            )

    def test_level_profile_shapes_levels(self):
        config = TaxonomyGeneratorConfig(
            concept_count=100,
            depth=4,
            level_profile=(50.0, 1.0, 1.0, 1.0),
            relationship_count=99,
            seed=0,
        )
        tax = generate_taxonomy(config)
        level1 = [l for l in tax.labels() if tax.depth_of(l) == 1]
        assert len(level1) > 40  # bulk of the mass is at level 1

    def test_dag_extra_parents_stay_in_branch(self):
        tax = generate_taxonomy(
            TaxonomyGeneratorConfig(
                concept_count=300, depth=6, relationship_count=500, seed=5
            )
        )
        root = tax.roots()[0]
        categories = tax.children_of(root)
        for label in tax.labels():
            tops = {
                c for c in categories if c in tax.ancestors_or_self(label)
            }
            # Local multi-parenting: a concept never spans two branches.
            assert len(tops) <= 1


class TestGoLike:
    def test_shape(self):
        tax = go_like_taxonomy(concept_count=800, depth=14, seed=1)
        assert len(tax) == 800
        assert tax.max_depth() == 14
        assert len(tax.roots()) == 1
        root = tax.roots()[0]
        assert tax.name_of(root) == "molecular_function"
        # GO-like shallow fan-out survives scaling.
        assert len(tax.children_of(root)) >= 8

    def test_names_are_go_style(self):
        tax = go_like_taxonomy(concept_count=50, seed=0)
        names = {tax.name_of(l) for l in tax.labels()}
        assert "molecular_function" in names
        assert any(name.startswith("GO:") for name in names)

    def test_deterministic(self):
        a = go_like_taxonomy(concept_count=120, seed=9)
        b = go_like_taxonomy(concept_count=120, seed=9)
        assert serializeable(a) == serializeable(b)

    def test_dag_surplus(self):
        tax = go_like_taxonomy(concept_count=600, seed=2)
        # ~1.3 relationships per concept.
        assert tax.relationship_count() > len(tax)


class TestAtomTaxonomy:
    def test_all_pte_atoms_present(self):
        tax = pte_atom_taxonomy()
        names = {tax.name_of(l) for l in tax.labels()}
        for atom in PTE_LEAF_ATOMS:
            assert atom in names

    def test_three_levels(self):
        tax = pte_atom_taxonomy()
        assert tax.max_depth() == 2
        assert tax.name_of(tax.roots()[0]) == "atom"

    def test_groups_are_parents(self):
        tax = pte_atom_taxonomy()
        for group, atoms in PTE_ATOM_GROUPS.items():
            group_id = tax.id_of(group)
            for atom in atoms:
                assert group_id in tax.parents_of(tax.id_of(atom))

    def test_aromatic_atoms_lowercase(self):
        tax = pte_atom_taxonomy()
        aromatic = tax.id_of("aromatic")
        for child in tax.children_of(aromatic):
            assert tax.name_of(child).islower()


def serializeable(tax) -> list[tuple[str, tuple[str, ...]]]:
    return sorted(
        (
            tax.name_of(label),
            tuple(sorted(tax.name_of(p) for p in tax.parents_of(label))),
        )
        for label in tax.labels()
    )
