"""Tests for taxonomy text serialization."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FormatError
from repro.taxonomy.io import (
    parse_taxonomy,
    read_taxonomy,
    serialize_taxonomy,
    write_taxonomy,
)
from repro.util.interner import LabelInterner
from tests.conftest import make_random_taxonomy

SAMPLE = """
n molecular_function   # the root
i transporter molecular_function
i carrier transporter
"""


class TestParse:
    def test_parse_sample(self):
        tax = parse_taxonomy(SAMPLE)
        assert len(tax) == 3
        carrier = tax.id_of("carrier")
        names = {tax.name_of(a) for a in tax.ancestors_or_self(carrier)}
        assert names == {"carrier", "transporter", "molecular_function"}

    def test_isolated_concept(self):
        tax = parse_taxonomy("n lonely\n")
        assert len(tax) == 1
        assert tax.roots() == (tax.id_of("lonely"),)

    def test_unknown_record_rejected(self):
        with pytest.raises(FormatError, match="unknown record"):
            parse_taxonomy("x what\n")

    def test_malformed_records_rejected(self):
        with pytest.raises(FormatError):
            parse_taxonomy("n\n")
        with pytest.raises(FormatError):
            parse_taxonomy("i child\n")

    def test_comments_and_blanks_ignored(self):
        tax = parse_taxonomy("\n# full comment\nn a  # trailing\n")
        assert len(tax) == 1


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path, go_excerpt):
        path = tmp_path / "tax.txt"
        write_taxonomy(go_excerpt, path)
        loaded = read_taxonomy(path)
        assert serialize_taxonomy(loaded) == serialize_taxonomy(go_excerpt)
        assert len(loaded) == len(go_excerpt)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_round_trip(self, seed):
        rng = random.Random(seed)
        tax = make_random_taxonomy(
            rng, LabelInterner(), rng.randint(2, 12), dag=True,
            multiroot=seed % 3 == 0,
        )
        loaded = parse_taxonomy(serialize_taxonomy(tax))
        assert len(loaded) == len(tax)
        for label in tax.labels():
            name = tax.name_of(label)
            expected = {tax.name_of(a) for a in tax.ancestors_or_self(label)}
            got = {
                loaded.name_of(a)
                for a in loaded.ancestors_or_self(loaded.id_of(name))
            }
            assert got == expected
