"""Unit tests for :mod:`repro.util.timing`."""

from __future__ import annotations

import pytest

from repro.util.timing import Stopwatch


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        assert first >= 0.0
        with sw:
            pass
        assert sw.elapsed >= first

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_running_flag(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_elapsed_ms(self):
        sw = Stopwatch()
        sw.elapsed = 0.25
        assert sw.elapsed_ms == 250.0
