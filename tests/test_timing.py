"""Unit tests for :mod:`repro.util.timing`."""

from __future__ import annotations

import time

import pytest

from repro.util.timing import Stopwatch


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        assert first >= 0.0
        with sw:
            pass
        assert sw.elapsed >= first

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reentrant_nesting_does_not_overwrite_start(self):
        # Regression: nested use of the same stopwatch used to clobber
        # (or reject) the running start time; nested spans must be
        # stack-safe and account the outer extent exactly once.
        sw = Stopwatch()
        with sw:
            time.sleep(0.02)
            with sw:
                time.sleep(0.01)
            assert sw.running  # inner exit must not stop the outer span
        assert not sw.running
        # The full outer extent (>= 30ms) is counted once, not the
        # 10ms the inner enter would have left after an overwrite.
        assert sw.elapsed >= 0.03
        assert sw.elapsed < 0.5

    def test_reentrant_depth_via_start_stop(self):
        sw = Stopwatch()
        sw.start()
        sw.start()
        assert sw.running
        sw.stop()
        assert sw.running
        assert sw.elapsed == 0.0  # still open: nothing accounted yet
        sw.stop()
        assert not sw.running
        assert sw.elapsed > 0.0
        with pytest.raises(RuntimeError):
            sw.stop()

    def test_running_flag(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_elapsed_ms(self):
        sw = Stopwatch()
        sw.elapsed = 0.25
        assert sw.elapsed_ms == 250.0
