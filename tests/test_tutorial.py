"""Executable check of the docs/TUTORIAL.md walkthrough.

Documentation that doesn't run is worse than none; this test mirrors the
tutorial's snippets step by step so the walkthrough can never drift from
the library.
"""

from __future__ import annotations

from repro import (
    GraphDatabase,
    GSpanMiner,
    MemoryBudgetExceeded,
    TAcGM,
    TAcGMOptions,
    Taxogram,
    TaxogramOptions,
    format_pattern,
    mine,
    mine_with_oracle,
    taxonomy_from_parent_names,
)


def _setup():
    taxonomy = taxonomy_from_parent_names(
        {
            "molecular_function": [],
            "transporter": "molecular_function",
            "catalytic_activity": "molecular_function",
            "carrier": "transporter",
            "cation_transporter": "transporter",
            "helicase": "catalytic_activity",
            "dna_helicase": "helicase",
        }
    )
    db = GraphDatabase(node_labels=taxonomy.interner)
    db.new_graph(
        ["carrier", "dna_helicase", "cation_transporter"],
        [(0, 1, "interacts"), (1, 2, "interacts")],
    )
    db.new_graph(["cation_transporter", "helicase"], [(0, 1, "interacts")])
    db.new_graph(["carrier", "helicase"], [(0, 1, "interacts")])
    return taxonomy, db


class TestTutorial:
    def test_step2_plain_mining_finds_nothing(self):
        taxonomy, db = _setup()
        assert GSpanMiner(db, min_support=1.0).mine() == []

    def test_step3_taxogram_finds_the_implied_pattern(self):
        taxonomy, db = _setup()
        result = mine(db, taxonomy, min_support=1.0)
        rendered = {format_pattern(p, taxonomy.interner) for p in result}
        assert "[0:helicase, 1:transporter | 0-1] sup=1.000" in rendered
        pattern = result.patterns[0]
        assert pattern.support == 1.0
        assert pattern.support_set == frozenset({0, 1, 2})
        assert set(result.stage_seconds) == {
            "relabel", "mine_classes", "specialize",
        }

    def test_step4_options_and_disk_backend(self):
        taxonomy, db = _setup()
        options = TaxogramOptions(min_support=0.5, max_edges=3)
        reference = Taxogram(options).mine(db, taxonomy)
        disk = Taxogram(
            TaxogramOptions(
                min_support=0.5, max_edges=3, occurrence_index_backend="disk"
            )
        ).mine(db, taxonomy)
        baseline = Taxogram(
            TaxogramOptions.baseline(min_support=0.5, max_edges=3)
        ).mine(db, taxonomy)
        assert disk.pattern_codes() == reference.pattern_codes()
        assert baseline.pattern_codes() == reference.pattern_codes()

    def test_step5_tacgm_agreement_or_oom(self):
        taxonomy, db = _setup()
        reference = mine(db, taxonomy, min_support=0.5)
        try:
            bottom_up = TAcGM(
                TAcGMOptions(min_support=0.5, memory_budget=1_000_000)
            ).mine(db, taxonomy)
        except MemoryBudgetExceeded:
            return  # also a documented outcome
        assert bottom_up.pattern_codes() == reference.pattern_codes()
        assert bottom_up.counters.isomorphism_tests > 0

    def test_step8_directed(self):
        taxonomy, _db = _setup()
        from repro.directed import DiGraphDatabase, mine_directed

        ddb = DiGraphDatabase(node_labels=taxonomy.interner)
        ddb.new_graph(["carrier", "helicase"], [(0, 1, "activates")])
        ddb.new_graph(["transporter", "dna_helicase"], [(0, 1, "activates")])
        directed = mine_directed(ddb, taxonomy, min_support=1.0)
        assert len(directed) == 1
        pattern = directed.patterns[0]
        (source, target, _label), = pattern.graph.arcs()
        assert taxonomy.name_of(pattern.graph.node_label(source)) == "transporter"
        assert taxonomy.name_of(pattern.graph.node_label(target)) == "helicase"

    def test_step6_oracle_agreement(self):
        taxonomy, db = _setup()
        oracle = mine_with_oracle(db, taxonomy, min_support=1.0, max_edges=3)
        result = mine(db, taxonomy, min_support=1.0, max_edges=3)
        assert oracle.pattern_codes() == result.pattern_codes()

    def test_step11_observability(self):
        taxonomy, db = _setup()
        from repro import RunReport, Tracer, mine_baseline

        tracer = Tracer()
        result = mine(db, taxonomy, min_support=1.0, tracer=tracer)
        report = result.report
        assert report is not None
        assert report.counter("specialize.bitset_intersections") > 0
        rendered = report.render()
        assert "== run report: taxogram ==" in rendered
        assert "spans:" in rendered
        assert "gspan.extend" in rendered

        fast = mine(db, taxonomy, min_support=1.0).report
        slow = mine_baseline(db, taxonomy, min_support=1.0).report
        deltas = fast.diff_counters(slow)
        # The paper's story in two counters: the enhanced pipeline
        # intersects bit-sets where the baseline isomorphism-tests.
        assert "specialize.bitset_intersections" in deltas
        assert deltas["specialize.bitset_intersections"][0] > 0

        restored = RunReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()

    def test_step12_incremental_mining(self, tmp_path):
        taxonomy, db = _setup()
        from repro import DatabaseDelta, IncrementalTaxogram

        store_dir = tmp_path / "pathways.store"
        options = TaxogramOptions(min_support=0.5, store_out=str(store_dir))
        Taxogram(options).mine(db, taxonomy)  # also writes the store

        # later — a new pathway arrives...
        adds = GraphDatabase(node_labels=taxonomy.interner)
        adds.new_graph(["carrier", "dna_helicase"], [(0, 1, "interacts")])

        updater = IncrementalTaxogram(str(store_dir))
        updated = updater.apply(DatabaseDelta.adding(adds))
        assert updated.report.counter("incremental.fallbacks") == 0

        # ...and graph 1 is retracted
        updated = updater.apply(DatabaseDelta.removing([1]))

        # every apply is equivalent to fresh mining of the updated database
        expected = GraphDatabase(node_labels=taxonomy.interner)
        expected.new_graph(
            ["carrier", "dna_helicase", "cation_transporter"],
            [(0, 1, "interacts"), (1, 2, "interacts")],
        )
        expected.new_graph(["carrier", "helicase"], [(0, 1, "interacts")])
        expected.new_graph(["carrier", "dna_helicase"], [(0, 1, "interacts")])
        fresh = mine(expected, taxonomy, min_support=0.5)
        assert updated.pattern_codes() == fresh.pattern_codes()
        assert [p.class_id for p in updated.patterns] == [
            p.class_id for p in fresh.patterns
        ]

        # the store survives restarts: reopening continues from disk
        reopened = IncrementalTaxogram(str(store_dir))
        assert len(reopened.store.database) == 3

    def test_step13_querying_a_store(self, tmp_path):
        taxonomy, db = _setup()
        from repro import StoreReader

        store_dir = tmp_path / "pathways.store"
        options = TaxogramOptions(min_support=0.5, store_out=str(store_dir))
        Taxogram(options).mine(db, taxonomy)

        reader = StoreReader(store_dir)

        # Exact support for any pattern at or below a mined class — no
        # isomorphism tests, even for patterns mining never emitted.
        pattern = reader.parse_pattern(
            "t # 0\nv 0 transporter\nv 1 helicase\ne 0 1 interacts\n"
        )
        assert reader.support(pattern) == 3
        assert reader.contains(pattern)

        specialized = reader.parse_pattern(
            "t # 0\nv 0 carrier\nv 1 helicase\ne 0 1 interacts\n"
        )
        assert reader.support(specialized) == 2

        # top-k over everything the store mined, most frequent first.
        top = reader.top_k(3)
        assert top and top[0].support_count >= top[-1].support_count

        # the whole session ran on bit-sets alone
        assert reader.metrics.counter("serving.vf2_tests") == 0

        # repeated queries come from the versioned cache...
        assert reader.query("support", pattern).cached

        # ...which an incremental update invalidates: readers follow the
        # store to its new version at the next query.
        from repro import DatabaseDelta, IncrementalTaxogram

        IncrementalTaxogram(str(store_dir)).apply(DatabaseDelta.removing([1]))
        answer = reader.query("support", pattern)
        assert answer.store_version == reader.version == 2
        assert answer.value == 2

    def test_step14_streaming_ingest(self, tmp_path):
        taxonomy, db = _setup()
        from repro import DatabaseDelta, mine
        from repro.streaming import StreamApplier, WriteAheadLog

        store_dir = tmp_path / "pathways.store"
        options = TaxogramOptions(min_support=0.5, store_out=str(store_dir))
        Taxogram(options).mine(db, taxonomy)

        adds = GraphDatabase(node_labels=taxonomy.interner)
        adds.new_graph(["carrier", "dna_helicase"], [(0, 1, "interacts")])

        wal_dir = tmp_path / "pathways.wal"
        with WriteAheadLog(wal_dir) as wal:
            seq = wal.append(DatabaseDelta.adding(adds))
            wal.append(DatabaseDelta.removing([99]))  # will be rejected

            applier = StreamApplier(store_dir, wal)
            assert applier.drain() == 2
            # The committed offset covers both records — including the
            # deterministically rejected one, which is reported, not
            # silently dropped and not batch-poisoning.
            assert applier.applied_seq == seq + 1
            assert applier.lag == 0
            [(rejected_seq, reason)] = applier.rejected
            assert rejected_seq == seq + 1
            assert "out of range" in reason

        # The drained store is what fresh mining of the updated
        # database would produce.
        expected = GraphDatabase(node_labels=taxonomy.interner)
        for gid in range(len(db)):
            expected.add_graph(db[gid].copy())
        expected.new_graph(["carrier", "dna_helicase"], [(0, 1, "interacts")])
        fresh = mine(expected, taxonomy, min_support=0.5)
        from repro import StoreReader

        reader = StoreReader(store_dir)
        assert reader.database_size == 4
        for pattern in fresh.patterns:
            assert reader.contains(pattern.graph)

        # Replay is idempotent: reopening applies nothing new.
        with WriteAheadLog(wal_dir) as wal:
            assert StreamApplier(store_dir, wal).drain() == 0

    def test_step15_replication(self, tmp_path):
        taxonomy, db = _setup()
        import json
        import threading
        import urllib.request

        from repro import StoreReader
        from repro.replication import (
            Follower,
            FollowerOptions,
            LocalReplica,
            PrimaryService,
            QueryRouter,
            StaleReplicasError,
        )
        from repro.streaming import ApplierOptions, IngestOptions

        store_dir = tmp_path / "pathways.store"
        options = TaxogramOptions(min_support=0.5, store_out=str(store_dir))
        Taxogram(options).mine(db, taxonomy)

        # A publishing primary: the step-14 ingest service plus the
        # replication surface (manifest / segments / snapshot), signed.
        primary = PrimaryService(
            store_dir,
            tmp_path / "pathways.wal",
            secret="hush",
            port=0,
            options=IngestOptions(wait_timeout_seconds=60.0),
            applier_options=ApplierOptions(max_latency_seconds=0.02),
        )
        primary.start()
        thread = threading.Thread(target=primary.serve_forever, daemon=True)
        thread.start()
        host, port = primary.address
        primary_url = f"http://{host}:{port}"
        try:
            # Ingest one pathway and wait for its batch to commit.
            request = urllib.request.Request(
                primary_url + "/ingest",
                json.dumps({
                    "add": "t # 0\nv 0 carrier\nv 1 helicase\n"
                           "e 0 1 interacts\n",
                    "wait": True,
                }).encode("utf-8"),
                {"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                ack = json.loads(response.read())
            assert ack["seq"] == 0

            # A follower is the same journal applied by the same code.
            follower = Follower(
                tmp_path / "replica.store",
                tmp_path / "replica.wal",
                primary_url,
                options=FollowerOptions(secret="hush"),
            )
            with follower:
                follower.catch_up(timeout=60)
                assert follower.lag() == 0
                assert follower.applied_seq == ack["seq"]

            # Route queries over the replica: exact, as always.
            pattern_text = (
                "t # 0\nv 0 transporter\nv 1 helicase\ne 0 1 interacts\n"
            )
            router = QueryRouter([LocalReplica(tmp_path / "replica.store")])
            try:
                routed = router.query("support", pattern_text)
                reader = StoreReader(tmp_path / "replica.store")
                direct = reader.query(
                    "support", reader.parse_pattern(pattern_text)
                )
                assert routed["value"] == direct.value == 4

                # Read-your-writes: the applied WAL offset is the
                # fleet-comparable freshness key.  A floor every live
                # replica misses sheds instead of answering stale.
                fresh = router.query(
                    "support", pattern_text, min_applied_seq=ack["seq"]
                )
                assert fresh["value"] == 4
                try:
                    router.query(
                        "support", pattern_text,
                        min_applied_seq=ack["seq"] + 1,
                    )
                    raise AssertionError("stale read was not shed")
                except StaleReplicasError as exc:
                    assert exc.retry_after == 1
            finally:
                router.close()
        finally:
            primary.server.shutdown()
            thread.join(timeout=10)
            primary.close()

    def test_step16_loadtest(self, tmp_path):
        taxonomy, db = _setup()
        import json

        from repro.cli import main as taxogram
        from repro.graphs.io import write_graph_database
        from repro.taxonomy.io import write_taxonomy

        store_dir = tmp_path / "pathways.store"
        options = TaxogramOptions(min_support=0.5, store_out=str(store_dir))
        Taxogram(options).mine(db, taxonomy)
        write_taxonomy(taxonomy, str(tmp_path / "tax.txt"))
        write_graph_database(db, str(tmp_path / "pathways.graphs"))
        add_file = tmp_path / "new_pathways.graphs"
        add_file.write_text(
            "t # 0\nv 0 carrier\nv 1 dna_helicase\ne 0 1 interacts\n"
        )

        # The console snippet, miniaturised: a seeded 2.5s mixed load
        # with a mid-run SIGKILL + same-port restart of the server.
        report_path = tmp_path / "report.json"
        assert taxogram([
            "loadtest", str(store_dir),
            "--wal", str(tmp_path / "pathways.wal"),
            "--duration", "2.5", "--rate", "25", "--seed", "7",
            "--fault", "kill-applier",
            "--add-file", str(add_file),
            "--report-out", str(report_path),
        ]) == 0

        # The audited invariants made it into the persisted report.
        report = json.loads(report_path.read_text())
        assert report["total"] > 0
        assert report["outcomes"]["ok"] > 0
        assert report["outcomes"]["server_error"] == 0
        assert report["outcomes"]["timeout"] == 0
        assert report["faults_fired"] == ["kill_applier"]
        assert set(report["latency"]) <= {"query", "ingest", "flush"}
        for histogram in report["latency"].values():
            assert histogram["p50_ms"] <= histogram["p99_ms"]

    def test_step17_similarity(self, tmp_path):
        taxonomy, db = _setup()
        from repro import StoreReader

        store_dir = tmp_path / "pathways.store"
        options = TaxogramOptions(min_support=0.5, store_out=str(store_dir))
        Taxogram(options).mine(db, taxonomy)

        reader = StoreReader(store_dir)
        pattern = reader.parse_pattern(
            "t # 0\nv 0 carrier\nv 1 dna_helicase\ne 0 1 interacts\n"
        )

        # Exactly one pathway contains the pattern...
        assert reader.fuzzy_contains(pattern).graph_ids == frozenset({0})

        # ...but every pathway is *similar* to it, with the scores the
        # tutorial prints (carrier matches graph 2 exactly; helicase is
        # one taxonomy hop from dna_helicase).
        ranked = reader.similar_patterns(pattern, threshold=0.2)
        assert [
            (s.graph_id, round(s.score, 4)) for s in ranked
        ] == [(0, 1.0), (2, 0.9167), (1, 0.8056)]

        assert round(reader.similarity_score(pattern, 1), 4) == 0.8056

        # Homomorphism semantics fold injectivity away: hom ⊇ iso.
        hom = reader.fuzzy_contains(
            pattern, threshold=0.6, semantics="homomorphism"
        )
        assert hom.graph_ids == frozenset({0, 1, 2})
        assert hom.path == "similarity:homomorphism"

        assert reader.metrics.counter("similarity.queries") > 0

    def test_step18_compression(self, tmp_path):
        taxonomy, db = _setup()
        import json

        from repro import StoreReader
        from repro.incremental.store import PatternStore
        from repro.util.bitset import kernel_counters, kernel_delta
        from repro.util.compression import (
            available_codecs,
            best_codec,
            normalize_codec,
        )

        # "auto" resolves to the best codec available in-process; zlib
        # is the stdlib fallback, so it is always on the menu.
        assert "zlib" in available_codecs()
        assert normalize_codec("auto") == best_codec()

        raw_dir = tmp_path / "raw.store"
        packed_dir = tmp_path / "pathways.store"
        for store_out, codec in ((raw_dir, None), (packed_dir, "auto")):
            Taxogram(
                TaxogramOptions(
                    min_support=1.0,
                    store_out=str(store_out),
                    store_compression=codec,
                )
            ).mine(db, taxonomy)

        # Manifest-driven negotiation: the raw store has no compression
        # block, the packed one records codec and per-file byte counts
        # (this is what `taxogram info` prints).
        raw_manifest = json.loads((raw_dir / "manifest.json").read_text())
        assert "compression" not in raw_manifest
        packed_manifest = json.loads(
            (packed_dir / "manifest.json").read_text()
        )
        block = packed_manifest["compression"]
        assert block["codec"] == best_codec()
        assert block["files"]["classes.json"]["stored"] < (
            block["files"]["classes.json"]["raw"]
        )

        # Both open, and answer identically.
        raw_store = PatternStore.open(raw_dir)
        packed_store = PatternStore.open(packed_dir)
        assert packed_store.compression == best_codec()
        assert raw_store.compression is None
        assert [c.code for c in packed_store.classes] == [
            c.code for c in raw_store.classes
        ]

        # The bit-set kernels keep process-level bitset.* counters;
        # snapshot-and-delta attributes work to one operation.
        reader = StoreReader(packed_dir)
        pattern = reader.parse_pattern(
            "t # 0\nv 0 carrier\nv 1 dna_helicase\ne 0 1 interacts\n"
        )
        snapshot = kernel_counters()
        ranked = reader.similar_patterns(pattern, threshold=0.2)
        assert [s.graph_id for s in ranked] == [0, 2, 1]
        delta = kernel_delta(snapshot)
        assert delta["bitset.jaccards"] > 0
        assert delta["bitset.blocks_visited"] > 0

    def test_step19_sessions(self, tmp_path):
        taxonomy, db = _setup()
        from repro import StoreReader
        from repro.sessions import (
            QuotaExceeded,
            SessionManager,
            TenantQuotas,
        )

        store_dir = tmp_path / "pathways.store"
        full = Taxogram(
            TaxogramOptions(min_support=0.5, store_out=str(store_dir))
        ).mine(db, taxonomy)
        assert len(full) == 3

        reader = StoreReader(store_dir)
        manager = SessionManager(reader)

        session = manager.create("alice")
        manager.add_examples(
            session.session_id,
            "t # 0\nv 0 carrier\nv 1 helicase\ne 0 1 interacts\n",
        )
        result = manager.mine(session.session_id)

        # The example witnesses two of the store's three patterns (the
        # cation_transporter specialization has no embedding into it)
        # from a single gSpan candidate, and the answers are the full
        # mine's, bit-identically.
        assert result.candidates == 1
        rendered = [
            format_pattern(p, taxonomy.interner) for p in result.patterns
        ]
        assert rendered == [
            "[0:helicase, 1:transporter | 0-1] sup=1.000",
            "[0:helicase, 1:carrier | 0-1] sup=0.667",
        ]
        by_code = {p.code.edges: p for p in full.patterns}
        for pattern in result.patterns:
            assert pattern.support_set == by_code[
                pattern.code.edges
            ].support_set

        # A second identical mine is a per-tenant cache hit.
        assert manager.mine(session.session_id).cached is True
        assert reader.metrics.counter("sessions.cache_hits") == 1

        # Quotas answer QuotaExceeded (429 + Retry-After over HTTP).
        strict = SessionManager(
            reader, quotas=TenantQuotas(max_sessions=1)
        )
        strict.create("bob")
        try:
            strict.create("bob")
            raise AssertionError("second session should breach quota")
        except QuotaExceeded as exc:
            assert exc.retry_after > 0
